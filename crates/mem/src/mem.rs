//! The sparse paged memory itself.

use crate::fx::FxMap;
use crate::{AccessKind, Endian, Image, MemFault};
use std::cell::Cell;

/// Size of a memory page in bytes.
pub const PAGE_SIZE: usize = 4096;

const PAGE_SHIFT: u64 = 12;

/// Lowest address considered valid; accesses below it fault, which catches
/// null-pointer dereferences in simulated programs.
const NULL_GUARD: u64 = 0x1000;

type Page = [u8; PAGE_SIZE];

/// Sparse, paged, byte-addressed memory.
///
/// Pages are allocated lazily and zero-filled on first touch. Reads of
/// untouched pages return zero without allocating, so sparse data segments
/// cost nothing. A guarded range (`[0x1000, limit)`) rejects wild and null
/// addresses with [`MemFault::OutOfRange`].
///
/// A one-entry page cache makes the sequential access patterns of
/// instruction fetch, block predecode, and loop-resident data cheap. The
/// cache is refreshed by reads as well as writes (interior mutability), so
/// the common load–load and load–store runs against one page hash at most
/// once per page switch.
///
/// # Examples
///
/// ```
/// use lis_mem::{Endian, Mem};
///
/// let mut mem = Mem::new();
/// mem.write_u64(0x2000, 0x0123_4567_89ab_cdef, Endian::Big)?;
/// assert_eq!(mem.read_u8(0x2000)?, 0x01);
/// assert_eq!(mem.read_u16(0x2006, Endian::Big)?, 0xcdef);
/// # Ok::<(), lis_mem::MemFault>(())
/// ```
#[derive(Debug)]
pub struct Mem {
    pages: FxMap<u64, Box<Page>>,
    limit: u64,
    last_page: Cell<u64>,
    last_ptr: Cell<*mut Page>,
    /// Whether `last_ptr` was derived from a `&mut` lookup. Pointers cached
    /// by the read path come from a shared reference and must never be
    /// written through; `page_mut` re-derives them instead.
    last_writable: Cell<bool>,
}

impl Clone for Mem {
    fn clone(&self) -> Self {
        // The page cache must not be copied: it points into *this* instance's
        // page boxes, not the clone's.
        Mem {
            pages: self.pages.clone(),
            limit: self.limit,
            last_page: Cell::new(u64::MAX),
            last_ptr: Cell::new(std::ptr::null_mut()),
            last_writable: Cell::new(false),
        }
    }
}

// SAFETY: `last_ptr` always points into a `Box<Page>` owned by `pages` (or is
// null); it is a cache, never shared outside this struct, and invalidated on
// any structural change. `Mem` is Send but deliberately NOT Sync: the cache
// cells are updated by `&self` reads, so concurrent shared access from two
// threads would race on them. Simulators own their memory and move whole
// into worker threads, which only needs Send.
unsafe impl Send for Mem {}

impl Default for Mem {
    fn default() -> Self {
        Self::new()
    }
}

impl Mem {
    /// Creates an empty memory with the default 1 TiB address limit.
    pub fn new() -> Self {
        Self::with_limit(1 << 40)
    }

    /// Creates an empty memory whose valid addresses are `[0x1000, limit)`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not page-aligned or does not exceed the null
    /// guard page.
    pub fn with_limit(limit: u64) -> Self {
        assert!(
            limit > NULL_GUARD && limit.is_multiple_of(PAGE_SIZE as u64),
            "limit must be page-aligned and above the null guard"
        );
        Mem {
            pages: FxMap::default(),
            limit,
            last_page: Cell::new(u64::MAX),
            last_ptr: Cell::new(std::ptr::null_mut()),
            last_writable: Cell::new(false),
        }
    }

    /// Upper bound (exclusive) of the valid address range.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Number of pages actually allocated.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Base addresses of all resident pages, sorted ascending.
    ///
    /// The sort matters: `HashMap` iteration order is nondeterministic, and
    /// callers like the chaos injector must make reproducible choices.
    pub fn page_bases(&self) -> Vec<u64> {
        let mut bases: Vec<u64> = self.pages.keys().map(|p| p << PAGE_SHIFT).collect();
        bases.sort_unstable();
        bases
    }

    /// Discards the page containing `addr`, if resident. Subsequent reads of
    /// the range return zero again. Returns whether a page was discarded.
    pub fn unmap_page(&mut self, addr: u64) -> bool {
        let pno = addr >> PAGE_SHIFT;
        let removed = self.pages.remove(&pno).is_some();
        if removed {
            // The one-entry cache may point into the freed box.
            self.last_page.set(u64::MAX);
            self.last_ptr.set(std::ptr::null_mut());
            self.last_writable.set(false);
        }
        removed
    }

    /// Compares two memories byte-for-byte and returns up to `max`
    /// differences in ascending address order. Unallocated pages compare as
    /// zero-filled, so two memories differing only in which zero pages are
    /// resident compare equal.
    pub fn diff(&self, other: &Mem, max: usize) -> Vec<crate::MemDelta> {
        const ZERO: Page = [0u8; PAGE_SIZE];
        let mut pnos: Vec<u64> = self.pages.keys().chain(other.pages.keys()).copied().collect();
        pnos.sort_unstable();
        pnos.dedup();
        let mut out = Vec::new();
        for pno in pnos {
            let a = self.pages.get(&pno).map(|b| &**b).unwrap_or(&ZERO);
            let b = other.pages.get(&pno).map(|b| &**b).unwrap_or(&ZERO);
            if a == b {
                continue;
            }
            for (i, (&la, &lb)) in a.iter().zip(b.iter()).enumerate() {
                if la != lb {
                    out.push(crate::MemDelta {
                        addr: (pno << PAGE_SHIFT) + i as u64,
                        lhs: la,
                        rhs: lb,
                    });
                    if out.len() == max {
                        return out;
                    }
                }
            }
        }
        out
    }

    fn check(&self, addr: u64, size: u8, kind: AccessKind) -> Result<(), MemFault> {
        if addr < NULL_GUARD || addr.saturating_add(size as u64) > self.limit {
            return Err(MemFault::OutOfRange { addr, kind });
        }
        if size > 1 && !addr.is_multiple_of(size as u64) {
            return Err(MemFault::Unaligned { addr, size, kind });
        }
        Ok(())
    }

    #[inline]
    fn page_ref(&self, pno: u64) -> Option<&Page> {
        let ptr = self.last_ptr.get();
        if pno == self.last_page.get() && !ptr.is_null() {
            // SAFETY: see the Send comment; the cache is kept coherent.
            return Some(unsafe { &*ptr });
        }
        let page = self.pages.get(&pno)?;
        // Refresh the cache so runs of reads against one page hash once.
        // The pointer is derived from a shared reference: readable only.
        self.last_page.set(pno);
        self.last_ptr.set(&**page as *const Page as *mut Page);
        self.last_writable.set(false);
        Some(page)
    }

    #[inline]
    fn page_mut(&mut self, pno: u64) -> &mut Page {
        let ptr = self.last_ptr.get();
        if pno == self.last_page.get() && self.last_writable.get() && !ptr.is_null() {
            // SAFETY: cache is coherent, the pointer was derived from a
            // `&mut` lookup, and we hold `&mut self`.
            return unsafe { &mut *ptr };
        }
        let page = self.pages.entry(pno).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        self.last_page.set(pno);
        let ptr = &mut **page as *mut Page;
        self.last_ptr.set(ptr);
        self.last_writable.set(true);
        // SAFETY: pointer freshly derived from the owned box.
        unsafe { &mut *ptr }
    }

    /// Reads `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfRange`] if any byte falls outside the valid
    /// range. Bulk reads have no alignment requirement.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        if addr < NULL_GUARD || addr.saturating_add(buf.len() as u64) > self.limit {
            return Err(MemFault::OutOfRange { addr, kind: AccessKind::Load });
        }
        let mut a = addr;
        let mut off = 0usize;
        while off < buf.len() {
            let pno = a >> PAGE_SHIFT;
            let po = (a % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - po).min(buf.len() - off);
            match self.page_ref(pno) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[po..po + n]),
                None => buf[off..off + n].fill(0),
            }
            a += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Writes all of `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfRange`] if any byte falls outside the valid
    /// range. Bulk writes have no alignment requirement.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        if addr < NULL_GUARD || addr.saturating_add(data.len() as u64) > self.limit {
            return Err(MemFault::OutOfRange { addr, kind: AccessKind::Store });
        }
        let mut a = addr;
        let mut off = 0usize;
        while off < data.len() {
            let pno = a >> PAGE_SHIFT;
            let po = (a % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - po).min(data.len() - off);
            self.page_mut(pno)[po..po + n].copy_from_slice(&data[off..off + n]);
            a += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfRange`] for addresses outside the valid range.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        self.check(addr, 1, AccessKind::Load)?;
        Ok(self.peek_u8(addr))
    }

    #[inline]
    fn peek_u8(&self, addr: u64) -> u8 {
        match self.page_ref(addr >> PAGE_SHIFT) {
            Some(p) => p[(addr % PAGE_SIZE as u64) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfRange`] for addresses outside the valid range.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) -> Result<(), MemFault> {
        self.check(addr, 1, AccessKind::Store)?;
        self.page_mut(addr >> PAGE_SHIFT)[(addr % PAGE_SIZE as u64) as usize] = val;
        Ok(())
    }

    #[inline]
    fn read_naturally<const N: usize>(
        &self,
        addr: u64,
        endian: Endian,
        kind: AccessKind,
    ) -> Result<[u8; N], MemFault> {
        self.check(addr, N as u8, kind)?;
        let pno = addr >> PAGE_SHIFT;
        let po = (addr % PAGE_SIZE as u64) as usize;
        let mut raw = [0u8; N];
        if let Some(p) = self.page_ref(pno) {
            raw.copy_from_slice(&p[po..po + N]);
        }
        if endian == Endian::Big {
            raw.reverse();
        }
        Ok(raw)
    }

    #[inline]
    fn write_naturally<const N: usize>(
        &mut self,
        addr: u64,
        mut raw: [u8; N],
        endian: Endian,
    ) -> Result<(), MemFault> {
        self.check(addr, N as u8, AccessKind::Store)?;
        if endian == Endian::Big {
            raw.reverse();
        }
        let pno = addr >> PAGE_SHIFT;
        let po = (addr % PAGE_SIZE as u64) as usize;
        self.page_mut(pno)[po..po + N].copy_from_slice(&raw);
        Ok(())
    }

    /// Reads a naturally aligned 16-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] or [`MemFault::OutOfRange`].
    #[inline]
    pub fn read_u16(&self, addr: u64, endian: Endian) -> Result<u16, MemFault> {
        Ok(u16::from_le_bytes(self.read_naturally(addr, endian, AccessKind::Load)?))
    }

    /// Reads a naturally aligned 32-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] or [`MemFault::OutOfRange`].
    #[inline]
    pub fn read_u32(&self, addr: u64, endian: Endian) -> Result<u32, MemFault> {
        Ok(u32::from_le_bytes(self.read_naturally(addr, endian, AccessKind::Load)?))
    }

    /// Reads a naturally aligned 64-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] or [`MemFault::OutOfRange`].
    #[inline]
    pub fn read_u64(&self, addr: u64, endian: Endian) -> Result<u64, MemFault> {
        Ok(u64::from_le_bytes(self.read_naturally(addr, endian, AccessKind::Load)?))
    }

    /// Fetches a naturally aligned 32-bit instruction word.
    ///
    /// Identical to [`Mem::read_u32`] except faults are tagged as
    /// [`AccessKind::Fetch`], so simulators can distinguish instruction-access
    /// faults from data-access faults.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] or [`MemFault::OutOfRange`].
    #[inline]
    pub fn fetch_u32(&self, addr: u64, endian: Endian) -> Result<u32, MemFault> {
        Ok(u32::from_le_bytes(self.read_naturally(addr, endian, AccessKind::Fetch)?))
    }

    /// Writes a naturally aligned 16-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] or [`MemFault::OutOfRange`].
    #[inline]
    pub fn write_u16(&mut self, addr: u64, val: u16, endian: Endian) -> Result<(), MemFault> {
        self.write_naturally(addr, val.to_le_bytes(), endian)
    }

    /// Writes a naturally aligned 32-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] or [`MemFault::OutOfRange`].
    #[inline]
    pub fn write_u32(&mut self, addr: u64, val: u32, endian: Endian) -> Result<(), MemFault> {
        self.write_naturally(addr, val.to_le_bytes(), endian)
    }

    /// Writes a naturally aligned 64-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unaligned`] or [`MemFault::OutOfRange`].
    #[inline]
    pub fn write_u64(&mut self, addr: u64, val: u64, endian: Endian) -> Result<(), MemFault> {
        self.write_naturally(addr, val.to_le_bytes(), endian)
    }

    /// Loads an [`Image`]'s sections into memory and returns its entry point.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfRange`] if a section does not fit in the
    /// valid address range.
    pub fn load_image(&mut self, image: &Image) -> Result<u64, MemFault> {
        for sec in &image.sections {
            self.write_bytes(sec.addr, &sec.bytes)?;
        }
        Ok(image.entry)
    }

    /// Reads a NUL-terminated string of at most `max` bytes starting at
    /// `addr`. Useful for syscall emulation.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::OutOfRange`] if the string runs off the valid
    /// range before a NUL byte or the `max` bound is reached.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let b = self.read_u8(addr + i)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_reads() {
        let mem = Mem::new();
        assert_eq!(mem.read_u32(0x5000, Endian::Little).unwrap(), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn round_trip_all_widths_le() {
        let mut mem = Mem::new();
        mem.write_u8(0x1000, 0xab).unwrap();
        mem.write_u16(0x1002, 0xbeef, Endian::Little).unwrap();
        mem.write_u32(0x1004, 0xdead_beef, Endian::Little).unwrap();
        mem.write_u64(0x1008, 0x0102_0304_0506_0708, Endian::Little).unwrap();
        assert_eq!(mem.read_u8(0x1000).unwrap(), 0xab);
        assert_eq!(mem.read_u16(0x1002, Endian::Little).unwrap(), 0xbeef);
        assert_eq!(mem.read_u32(0x1004, Endian::Little).unwrap(), 0xdead_beef);
        assert_eq!(mem.read_u64(0x1008, Endian::Little).unwrap(), 0x0102_0304_0506_0708);
    }

    #[test]
    fn endianness_is_per_access() {
        let mut mem = Mem::new();
        mem.write_u32(0x1000, 0x0102_0304, Endian::Big).unwrap();
        assert_eq!(mem.read_u8(0x1000).unwrap(), 0x01);
        assert_eq!(mem.read_u8(0x1003).unwrap(), 0x04);
        assert_eq!(mem.read_u32(0x1000, Endian::Little).unwrap(), 0x0403_0201);
    }

    #[test]
    fn unaligned_access_faults() {
        let mut mem = Mem::new();
        let err = mem.read_u32(0x1001, Endian::Little).unwrap_err();
        assert!(matches!(err, MemFault::Unaligned { size: 4, .. }));
        let err = mem.write_u64(0x1004, 0, Endian::Little).unwrap_err();
        assert!(matches!(err, MemFault::Unaligned { size: 8, .. }));
        assert_eq!(err.addr(), 0x1004);
    }

    #[test]
    fn null_guard_faults() {
        let mut mem = Mem::new();
        assert!(mem.read_u32(0x0, Endian::Little).is_err());
        assert!(mem.read_u8(0xfff).is_err());
        assert!(mem.write_u8(0x10, 1).is_err());
        assert!(mem.read_u8(0x1000).is_ok());
    }

    #[test]
    fn limit_faults() {
        let mut mem = Mem::with_limit(0x10000);
        assert!(mem.write_u8(0xffff, 1).is_ok());
        let err = mem.write_u8(0x10000, 1).unwrap_err();
        assert!(matches!(err, MemFault::OutOfRange { .. }));
        assert_eq!(err.kind(), AccessKind::Store);
        // A multi-byte access straddling the limit also faults.
        assert!(mem.write_u32(0xfffc, 0, Endian::Little).is_ok());
        assert!(mem.read_u64(0xfff8, Endian::Little).is_ok());
        assert!(mem.read_u64(0x10000 - 4, Endian::Little).is_err());
    }

    #[test]
    fn bulk_crosses_pages() {
        let mut mem = Mem::new();
        let data: Vec<u8> = (0..=255).cycle().take(3 * PAGE_SIZE).map(|b| b as u8).collect();
        mem.write_bytes(0x1ffe, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(0x1ffe, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn bulk_read_of_hole_is_zero() {
        let mut mem = Mem::new();
        mem.write_u8(0x1000, 0xff).unwrap();
        let mut buf = [1u8; 16];
        mem.read_bytes(0x9000, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn fetch_faults_are_tagged() {
        let mem = Mem::new();
        let err = mem.fetch_u32(0x2, Endian::Little).unwrap_err();
        assert_eq!(err.kind(), AccessKind::Fetch);
    }

    #[test]
    fn cstr_reads() {
        let mut mem = Mem::new();
        mem.write_bytes(0x1000, b"hello\0world").unwrap();
        assert_eq!(mem.read_cstr(0x1000, 64).unwrap(), b"hello");
        assert_eq!(mem.read_cstr(0x1006, 3).unwrap(), b"wor");
    }

    #[test]
    fn unmap_zeroes_and_invalidates() {
        let mut mem = Mem::new();
        mem.write_u32(0x1000, 0xdead_beef, Endian::Little).unwrap();
        mem.write_u32(0x5000, 0x1234_5678, Endian::Little).unwrap();
        assert_eq!(mem.page_bases(), vec![0x1000, 0x5000]);
        assert!(mem.unmap_page(0x1008)); // any address within the page
        assert!(!mem.unmap_page(0x1008));
        assert_eq!(mem.read_u32(0x1000, Endian::Little).unwrap(), 0);
        assert_eq!(mem.read_u32(0x5000, Endian::Little).unwrap(), 0x1234_5678);
        assert_eq!(mem.page_bases(), vec![0x5000]);
    }

    #[test]
    fn diff_ignores_zero_pages_and_caps() {
        let mut a = Mem::new();
        let mut b = Mem::new();
        // Resident-but-zero page on one side only: equal.
        a.write_u8(0x3000, 0).unwrap();
        assert!(a.diff(&b, 16).is_empty());
        b.write_u32(0x1000, 0x0000_ff00, Endian::Little).unwrap();
        a.write_u32(0x1000, 0x00ff_00ff, Endian::Little).unwrap();
        let d = a.diff(&b, 16);
        assert_eq!(
            d,
            vec![
                crate::MemDelta { addr: 0x1000, lhs: 0xff, rhs: 0x00 },
                crate::MemDelta { addr: 0x1001, lhs: 0x00, rhs: 0xff },
                crate::MemDelta { addr: 0x1002, lhs: 0xff, rhs: 0x00 },
            ]
        );
        assert_eq!(a.diff(&b, 2).len(), 2);
        assert_eq!(b.diff(&a, 16)[0].lhs, 0x00);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Mem::new();
        a.write_u32(0x1000, 7, Endian::Little).unwrap();
        let b = a.clone();
        a.write_u32(0x1000, 9, Endian::Little).unwrap();
        assert_eq!(b.read_u32(0x1000, Endian::Little).unwrap(), 7);
        assert_eq!(a.read_u32(0x1000, Endian::Little).unwrap(), 9);
    }
}
