//! End-to-end service tests over real sockets: a daemon on an ephemeral
//! port, scripted client sessions, and the isolation/sharing guarantees the
//! service exists to provide.

use lis_serve::json::{self, Value};
use lis_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Starts a daemon on an ephemeral port; returns its address and the thread
/// that will yield the exit code once the daemon shuts down.
fn start_server() -> (SocketAddr, std::thread::JoinHandle<u8>) {
    let cfg = ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        jobs: 2,
        drain_deadline: Duration::from_secs(20),
        deadline: None,
    };
    let server = Server::bind(&cfg).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// One client session: line out, line in.
struct Client {
    out: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let out = TcpStream::connect(addr).expect("connect");
        // Generous: verify/sweep requests do real simulation work.
        out.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
        let reader = BufReader::new(out.try_clone().expect("clone"));
        Client { out, reader }
    }

    fn send(&mut self, frame: &str) -> Value {
        self.out.write_all(frame.as_bytes()).expect("write frame");
        self.out.write_all(b"\n").expect("write newline");
        self.out.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(line.ends_with('\n'), "response is a complete line: {line:?}");
        json::parse(line.trim_end()).expect("response parses as JSON")
    }
}

fn status_of(v: &Value) -> u64 {
    v.get("status").and_then(Value::as_u64).expect("status field")
}

fn result_u64(v: &Value, key: &str) -> u64 {
    v.get("result")
        .and_then(|r| r.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("result.{key} in {v:?}"))
}

fn result_bool(v: &Value, key: &str) -> bool {
    v.get("result")
        .and_then(|r| r.get(key))
        .and_then(Value::as_bool)
        .unwrap_or_else(|| panic!("result.{key} in {v:?}"))
}

fn store_counter(status: &Value, key: &str) -> u64 {
    status
        .get("result")
        .and_then(|r| r.get("store"))
        .and_then(|s| s.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("result.store.{key} in {status:?}"))
}

fn shutdown_and_join(addr: SocketAddr, handle: std::thread::JoinHandle<u8>) -> u8 {
    let mut c = Client::connect(addr);
    let resp = c.send(r#"{"lis":1,"id":999,"cmd":"shutdown"}"#);
    assert_eq!(status_of(&resp), 0);
    assert!(result_bool(&resp, "draining"));
    handle.join().expect("server thread")
}

#[test]
fn two_sessions_share_the_translation_cache() {
    let (addr, handle) = start_server();
    let run = r#"{"lis":1,"id":1,"cmd":"run","isa":"alpha","kernel":"gcd","buildset":"block-all","backend":"compiled"}"#;

    // Session one: cold — builds and publishes.
    let mut a = Client::connect(addr);
    let ra = a.send(run);
    assert_eq!(status_of(&ra), 0, "{ra:?}");
    assert!(!result_bool(&ra, "warm"));
    assert_eq!(result_u64(&ra, "seeded"), 0);

    // Session two (a different connection): warm — adopts, builds nothing.
    let mut b = Client::connect(addr);
    let rb = b.send(run);
    assert_eq!(status_of(&rb), 0, "{rb:?}");
    assert!(result_bool(&rb, "warm"), "second session warm-starts: {rb:?}");
    assert!(result_u64(&rb, "seeded") > 0, "seeded blocks prove reuse");
    let stats = rb.get("result").and_then(|r| r.get("stats")).expect("stats");
    assert_eq!(
        stats.get("blocks_built").and_then(Value::as_u64),
        Some(0),
        "warm run translated nothing"
    );

    // Both sessions computed the same thing.
    let stdout = |v: &Value| {
        v.get("result").and_then(|r| r.get("stdout")).and_then(Value::as_str).map(str::to_string)
    };
    assert_eq!(stdout(&ra), stdout(&rb));

    // The shared store agrees: one miss (cold), one hit (warm).
    let st = b.send(r#"{"lis":1,"id":2,"cmd":"status"}"#);
    assert_eq!(store_counter(&st, "misses"), 1, "{st:?}");
    assert_eq!(store_counter(&st, "hits"), 1, "{st:?}");
    assert_eq!(store_counter(&st, "entries"), 1, "{st:?}");

    assert_eq!(shutdown_and_join(addr, handle), 0);
}

#[test]
fn a_poisoned_chaos_session_never_leaks_into_siblings() {
    let (addr, handle) = start_server();

    // Session one runs a translate-fault chaos campaign: its superblock
    // cache is deliberately poisoned (that is what the campaign tests).
    let mut chaos = Client::connect(addr);
    let rc = chaos.send(
        r#"{"lis":1,"id":1,"cmd":"chaos","isa":"alpha","kernel":"strrev","buildset":"block-all","backend":"compiled","translate":true,"seed":7,"period":200,"runs":2}"#,
    );
    let cs = status_of(&rc);
    assert!(cs == 0 || cs == 3, "chaos completes or storms, never errors: {rc:?}");

    // The shared store saw none of it, in either direction.
    let st = chaos.send(r#"{"lis":1,"id":2,"cmd":"status"}"#);
    for k in ["hits", "misses", "inserts", "entries"] {
        assert_eq!(store_counter(&st, k), 0, "chaos must bypass the store: {st:?}");
    }

    // A sibling session on the same key runs clean and verifies clean.
    let mut clean = Client::connect(addr);
    let rr = clean.send(
        r#"{"lis":1,"id":3,"cmd":"run","isa":"alpha","kernel":"strrev","buildset":"block-all","backend":"compiled"}"#,
    );
    assert_eq!(status_of(&rr), 0, "{rr:?}");
    assert_eq!(rr.get("result").and_then(|r| r.get("exit_code")).and_then(Value::as_u64), Some(0));
    let rv = clean.send(r#"{"lis":1,"id":4,"cmd":"verify","isa":"alpha"}"#);
    assert_eq!(status_of(&rv), 0, "verification via the service is clean: {rv:?}");
    assert_eq!(result_u64(&rv, "divergences"), 0);

    assert_eq!(shutdown_and_join(addr, handle), 0);
}

#[test]
fn garbage_frames_get_typed_errors_and_the_session_survives() {
    let (addr, handle) = start_server();
    let mut c = Client::connect(addr);

    for garbage in [
        "not json at all",
        "{",
        "[1,2,3]",
        r#""a bare string""#,
        r#"{"no":"version"}"#,
        r#"{"lis":2,"id":1,"cmd":"status"}"#,
        r#"{"lis":1,"id":1}"#,
        r#"{"lis":1,"id":1,"cmd":"frobnicate"}"#,
        r#"{"lis":1,"id":1,"cmd":"run"}"#,
        r#"{"lis":1,"id":1,"cmd":"run","isa":7,"kernel":"gcd"}"#,
        "\u{0007}\u{0001}binary\u{0000}noise",
        r#"{"lis":1,"id":1,"cmd":"status","x":1e999}"#,
    ] {
        let resp = c.send(garbage);
        assert_eq!(status_of(&resp), 2, "garbage is status 2: {garbage:?} -> {resp:?}");
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
        let err = resp.get("error").and_then(Value::as_str).expect("error string");
        assert!(!err.is_empty());
    }

    // The id is salvaged when the JSON parses but the frame is bad.
    let resp = c.send(r#"{"lis":1,"id":42,"cmd":"nonsense"}"#);
    assert_eq!(resp.get("id").and_then(Value::as_u64), Some(42));

    // After all that abuse, the same connection still serves real requests.
    let st = c.send(r#"{"lis":1,"id":5,"cmd":"status"}"#);
    assert_eq!(status_of(&st), 0, "{st:?}");

    assert_eq!(shutdown_and_join(addr, handle), 0);
}

#[test]
fn concurrent_sessions_make_progress_together() {
    let (addr, handle) = start_server();
    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let frame = format!(
                    r#"{{"lis":1,"id":{i},"cmd":"run","isa":"arm","kernel":"gcd","backend":"cached"}}"#
                );
                let resp = c.send(&frame);
                assert_eq!(status_of(&resp), 0, "{resp:?}");
                assert_eq!(resp.get("id").and_then(Value::as_u64), Some(i));
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let mut c = Client::connect(addr);
    let st = c.send(r#"{"lis":1,"id":9,"cmd":"status"}"#);
    assert_eq!(
        st.get("result").and_then(|r| r.get("sessions_total")).and_then(Value::as_u64),
        Some(5),
        "{st:?}"
    );
    // Four identical keys: one cold publish, three warm hits.
    assert_eq!(store_counter(&st, "entries"), 1, "{st:?}");
    assert_eq!(store_counter(&st, "misses") + store_counter(&st, "hits"), 4, "{st:?}");

    assert_eq!(shutdown_and_join(addr, handle), 0);
}

#[test]
fn trace_replay_request_rejects_a_corrupt_file_without_dying() {
    let (addr, handle) = start_server();
    let dir = std::env::temp_dir().join("lis-serve-service-test");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("bad.lst");
    std::fs::write(&path, b"this is not a trace").expect("write");

    let mut c = Client::connect(addr);
    let frame = format!(r#"{{"lis":1,"id":1,"cmd":"trace-replay","path":"{}"}}"#, path.display());
    let resp = c.send(&frame);
    assert_eq!(status_of(&resp), 4, "corrupt trace is status 4: {resp:?}");

    // Session and daemon both survive.
    let st = c.send(r#"{"lis":1,"id":2,"cmd":"status"}"#);
    assert_eq!(status_of(&st), 0);

    assert_eq!(shutdown_and_join(addr, handle), 0);
}
