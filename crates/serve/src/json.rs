//! A minimal recursive-descent JSON reader for protocol frames.
//!
//! The workspace writes JSON with [`lis_core::JsonObj`] but has never needed
//! to *read* any until the service protocol arrived; this parser is the
//! read half. It is deliberately strict (no trailing garbage, no unpaired
//! surrogates smuggled through `\u` escapes silently — they decode to
//! U+FFFD) and hardened the way the trace reader is: bounded depth, every
//! error a typed offset-carrying value, never a panic on hostile input.

/// Maximum nesting depth accepted before a frame is rejected as hostile.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the protocol only uses integers that fit in `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, matching common parser behavior).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// A [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { offset: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => {
                self.pos = start;
                Err(self.err("malformed number"))
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => {
                            self.pos -= 1;
                            return Err(self.err("unknown escape"));
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf8");
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // A high surrogate must be followed by `\u` + low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return Ok(char::from_u32(c).unwrap_or('\u{FFFD}'));
                }
            }
            return Ok('\u{FFFD}');
        }
        Ok(char::from_u32(hi).unwrap_or('\u{FFFD}'))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad \\u hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_protocol_uses() {
        let v = parse(r#"{"lis":1,"id":7,"cmd":"run","full":true,"kernels":["gcd","fib"]}"#)
            .expect("parses");
        assert_eq!(v.get("lis").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("run"));
        assert_eq!(v.get("full").and_then(Value::as_bool), Some(true));
        let ks = v.get("kernels").and_then(Value::as_arr).expect("array");
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].as_str(), Some("gcd"));
    }

    #[test]
    fn round_trips_jsonobj_output() {
        let mut o = lis_core::JsonObj::new();
        o.str("s", "a\"b\\c\nd\u{1F600}").u64("n", u64::MAX / 2).bool("b", false).f64("f", 1.5);
        let v = parse(&o.finish()).expect("parses our own writer");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\\c\nd\u{1F600}"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("f"), Some(&Value::Num(1.5)));
    }

    #[test]
    fn escapes_and_surrogates() {
        assert_eq!(parse(r#""\u0041\t""#).unwrap(), Value::Str("A\t".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("\u{1F600}".into()));
        // Lone surrogates decode to the replacement character, never panic.
        assert_eq!(parse(r#""\ud800x""#).unwrap(), Value::Str("\u{FFFD}x".into()));
    }

    #[test]
    fn hostile_inputs_error_and_never_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "]",
            "{]",
            "nul",
            "tru",
            "+1",
            "1.2.3",
            "\"",
            "\"\\",
            "\"\\q\"",
            "\"\\u12\"",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "[1 2]",
            "{} {}",
            "01x",
            "\u{1}",
            "\"\u{1}\"",
            "--",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
        // Depth bomb: rejected, not a stack overflow.
        let bomb = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&bomb).expect_err("depth bomb rejected");
        assert!(err.msg.contains("deep"), "{err}");
    }

    #[test]
    fn numbers_and_integer_views() {
        assert_eq!(parse("-3").unwrap(), Value::Num(-3.0));
        assert_eq!(parse("2.5").unwrap().as_u64(), None, "fractions are not integers");
        assert_eq!(parse("-1").unwrap().as_u64(), None, "negatives are not u64");
        assert_eq!(parse("100000000").unwrap().as_u64(), Some(100_000_000));
    }
}
