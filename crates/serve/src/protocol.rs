//! The line-delimited JSON protocol: versioned request frames in, one
//! response frame per request out.
//!
//! A request is one line: `{"lis":1,"id":<n>,"cmd":"<name>",...}` where
//! `lis` is the protocol version, `id` is an opaque client-chosen echo, and
//! `cmd` selects the operation. A response is one line:
//! `{"lis":1,"id":<n>,"ok":<bool>,"status":<code>,...}` where `status`
//! mirrors the CLI exit-code vocabulary (0 clean, 1 error, 2 usage or
//! divergence, 3 fault-storm/deadline, 4 corrupt trace). Malformed frames
//! get an `ok:false` response with a typed error string and `status` 2; the
//! connection stays usable — a garbage line must never take the session
//! down, let alone the daemon.

use crate::json::{self, Value};

/// Protocol version spoken (and required) by this daemon.
pub const PROTOCOL_VERSION: u64 = 1;

/// Longest accepted request line in bytes; longer lines are hostile.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-chosen request identifier, echoed in the response.
    pub id: u64,
    /// The operation to perform.
    pub req: Request,
}

/// Every operation the service accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Assemble and run a kernel (or inline source) under one interface,
    /// warm-starting from the shared artifact store when possible.
    Run {
        /// ISA name.
        isa: String,
        /// Suite kernel name (exclusive with `src`).
        kernel: Option<String>,
        /// Inline assembly source (exclusive with `kernel`).
        src: Option<String>,
        /// Buildset name (default `one-all`, as for `lis run`).
        buildset: String,
        /// Backend name (default `cached`).
        backend: String,
        /// Instruction budget (default 100M, as for `lis run`).
        max: u64,
    },
    /// Lockstep verification (the `lis verify` matrix).
    Verify {
        /// Restrict to one ISA; empty means all three.
        isa: String,
        /// Full kernel suite instead of the quick subset.
        full: bool,
    },
    /// A seeded chaos campaign. Chaos sessions never touch the shared
    /// artifact store — their caches follow per-session invalidation rules.
    Chaos {
        /// ISA name.
        isa: String,
        /// Suite kernel name (default `strrev`).
        kernel: String,
        /// Buildset name (default `block-all`).
        buildset: String,
        /// Backend name (default `cached`).
        backend: String,
        /// First campaign seed.
        seed: u64,
        /// Mean instructions between injections.
        period: u64,
        /// Seeded runs in the campaign.
        runs: u64,
        /// Also unmap pages.
        unmap: bool,
        /// Also poison superblock translations.
        translate: bool,
    },
    /// One sweep sub-matrix, byte-identical to `lis sweep` over the same
    /// kernels/backends (the service path must not perturb the scoreboard).
    SweepCell {
        /// Kernel subset; empty means the full suite.
        kernels: Vec<String>,
        /// Backend set name (`cached|interpreted|compiled|both|all`).
        backends: String,
        /// Timing-preset names to cross with the matrix; empty means
        /// `classic` only.
        timings: Vec<String>,
        /// Per-cell instruction budget (default 100M, the CLI default).
        max: u64,
    },
    /// Replay a server-local trace file through the ooo timing consumer.
    TraceReplay {
        /// Path to the trace, resolved on the server.
        path: String,
        /// Worker shards.
        shards: usize,
        /// Timing-preset names to re-time the recording under; empty means
        /// `classic` only.
        timings: Vec<String>,
    },
    /// Daemon status: scheduler, sessions, shared-store counters.
    Status,
    /// Begin graceful shutdown: drain in-flight work, then exit.
    Shutdown,
}

impl Request {
    /// The frame's `cmd` string (for logs and responses).
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Run { .. } => "run",
            Request::Verify { .. } => "verify",
            Request::Chaos { .. } => "chaos",
            Request::SweepCell { .. } => "sweep-cell",
            Request::TraceReplay { .. } => "trace-replay",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Every way a request line can be rejected before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line is not JSON at all.
    Json(json::JsonError),
    /// The line parses but is not an object.
    NotObject,
    /// The line is longer than [`MAX_FRAME_LEN`].
    FrameTooLong(usize),
    /// `lis` is missing or not this daemon's [`PROTOCOL_VERSION`].
    BadVersion,
    /// A required field is missing or has the wrong type.
    BadField(&'static str),
    /// `cmd` names no operation.
    UnknownCommand(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Json(e) => write!(f, "protocol: malformed JSON at {e}"),
            ProtocolError::NotObject => write!(f, "protocol: frame is not an object"),
            ProtocolError::FrameTooLong(n) => {
                write!(f, "protocol: frame of {n} bytes exceeds {MAX_FRAME_LEN}")
            }
            ProtocolError::BadVersion => {
                write!(
                    f,
                    "protocol: missing or unsupported `lis` version (want {PROTOCOL_VERSION})"
                )
            }
            ProtocolError::BadField(k) => write!(f, "protocol: missing or mistyped field `{k}`"),
            ProtocolError::UnknownCommand(c) => write!(f, "protocol: unknown cmd `{c}`"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn str_field(v: &Value, key: &str, default: &str) -> Result<String, ProtocolError> {
    match v.get(key) {
        None => Ok(default.to_string()),
        Some(f) => f.as_str().map(str::to_string).ok_or(ProtocolError::BadField(leak_key(key))),
    }
}

fn u64_field(v: &Value, key: &str, default: u64) -> Result<u64, ProtocolError> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f.as_u64().ok_or(ProtocolError::BadField(leak_key(key))),
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, ProtocolError> {
    match v.get(key) {
        None => Ok(false),
        Some(f) => f.as_bool().ok_or(ProtocolError::BadField(leak_key(key))),
    }
}

/// An optional JSON array of strings; absent means empty.
fn str_list_field(v: &Value, key: &str) -> Result<Vec<String>, ProtocolError> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(arr) => {
            let items = arr.as_arr().ok_or(ProtocolError::BadField(leak_key(key)))?;
            items
                .iter()
                .map(|k| {
                    k.as_str().map(str::to_string).ok_or(ProtocolError::BadField(leak_key(key)))
                })
                .collect()
        }
    }
}

/// Maps a field name to its `&'static` twin for error payloads. The
/// protocol's field vocabulary is closed, so this never actually leaks.
fn leak_key(key: &str) -> &'static str {
    const KEYS: &[&str] = &[
        "lis",
        "id",
        "cmd",
        "isa",
        "kernel",
        "kernels",
        "src",
        "buildset",
        "backend",
        "backends",
        "max",
        "full",
        "seed",
        "period",
        "runs",
        "unmap",
        "translate",
        "path",
        "shards",
        "timings",
    ];
    KEYS.iter().find(|k| **k == key).copied().unwrap_or("?")
}

/// Parses one request line into a [`Frame`].
///
/// # Errors
///
/// A typed [`ProtocolError`]; the caller turns it into an `ok:false`
/// response and keeps the connection open.
pub fn parse_frame(line: &str) -> Result<Frame, ProtocolError> {
    if line.len() > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLong(line.len()));
    }
    let v = json::parse(line).map_err(ProtocolError::Json)?;
    if !matches!(v, Value::Obj(_)) {
        return Err(ProtocolError::NotObject);
    }
    let version = v.get("lis").and_then(Value::as_u64).ok_or(ProtocolError::BadVersion)?;
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::BadVersion);
    }
    let id = v.get("id").and_then(Value::as_u64).ok_or(ProtocolError::BadField("id"))?;
    let cmd = v.get("cmd").and_then(Value::as_str).ok_or(ProtocolError::BadField("cmd"))?;

    let req = match cmd {
        "run" => {
            let isa = v
                .get("isa")
                .and_then(Value::as_str)
                .ok_or(ProtocolError::BadField("isa"))?
                .to_string();
            let kernel = match v.get("kernel") {
                None => None,
                Some(k) => Some(k.as_str().ok_or(ProtocolError::BadField("kernel"))?.to_string()),
            };
            let src = match v.get("src") {
                None => None,
                Some(s) => Some(s.as_str().ok_or(ProtocolError::BadField("src"))?.to_string()),
            };
            if kernel.is_none() == src.is_none() {
                // Exactly one program source, please.
                return Err(ProtocolError::BadField("kernel"));
            }
            Request::Run {
                isa,
                kernel,
                src,
                buildset: str_field(&v, "buildset", "one-all")?,
                backend: str_field(&v, "backend", "cached")?,
                max: u64_field(&v, "max", 100_000_000)?,
            }
        }
        "verify" => {
            Request::Verify { isa: str_field(&v, "isa", "")?, full: bool_field(&v, "full")? }
        }
        "chaos" => Request::Chaos {
            isa: v
                .get("isa")
                .and_then(Value::as_str)
                .ok_or(ProtocolError::BadField("isa"))?
                .to_string(),
            kernel: str_field(&v, "kernel", "strrev")?,
            buildset: str_field(&v, "buildset", "block-all")?,
            backend: str_field(&v, "backend", "cached")?,
            seed: u64_field(&v, "seed", 1)?,
            period: u64_field(&v, "period", 500)?.max(1),
            runs: u64_field(&v, "runs", 4)?.clamp(1, 64),
            unmap: bool_field(&v, "unmap")?,
            translate: bool_field(&v, "translate")?,
        },
        "sweep-cell" => Request::SweepCell {
            kernels: str_list_field(&v, "kernels")?,
            backends: str_field(&v, "backends", "cached")?,
            timings: str_list_field(&v, "timings")?,
            max: u64_field(&v, "max", 100_000_000)?,
        },
        "trace-replay" => Request::TraceReplay {
            path: v
                .get("path")
                .and_then(Value::as_str)
                .ok_or(ProtocolError::BadField("path"))?
                .to_string(),
            shards: u64_field(&v, "shards", 1)?.clamp(1, 64) as usize,
            timings: str_list_field(&v, "timings")?,
        },
        "status" => Request::Status,
        "shutdown" => Request::Shutdown,
        other => return Err(ProtocolError::UnknownCommand(other.to_string())),
    };
    Ok(Frame { id, req })
}

/// Renders the common response envelope; handler payload fields are already
/// in `payload` (a rendered JSON object or the empty string).
pub fn response(id: u64, cmd: &str, status: u8, error: Option<&str>, payload: &str) -> String {
    let mut o = lis_core::JsonObj::new();
    o.u64("lis", PROTOCOL_VERSION)
        .u64("id", id)
        .str("cmd", cmd)
        .bool("ok", status == 0)
        .u64("status", u64::from(status));
    if let Some(e) = error {
        o.str("error", e);
    }
    if !payload.is_empty() {
        o.raw("result", payload);
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_run_frame_with_defaults() {
        let f = parse_frame(r#"{"lis":1,"id":3,"cmd":"run","isa":"alpha","kernel":"gcd"}"#)
            .expect("parses");
        assert_eq!(f.id, 3);
        let Request::Run { isa, kernel, src, buildset, backend, max } = f.req else {
            panic!("wrong request");
        };
        assert_eq!(isa, "alpha");
        assert_eq!(kernel.as_deref(), Some("gcd"));
        assert_eq!(src, None);
        assert_eq!(buildset, "one-all");
        assert_eq!(backend, "cached");
        assert_eq!(max, 100_000_000);
    }

    #[test]
    fn version_and_id_are_mandatory() {
        assert_eq!(parse_frame(r#"{"id":1,"cmd":"status"}"#), Err(ProtocolError::BadVersion),);
        assert_eq!(
            parse_frame(r#"{"lis":2,"id":1,"cmd":"status"}"#),
            Err(ProtocolError::BadVersion),
        );
        assert_eq!(parse_frame(r#"{"lis":1,"cmd":"status"}"#), Err(ProtocolError::BadField("id")),);
        assert_eq!(
            parse_frame(r#"{"lis":1,"id":1,"cmd":"frobnicate"}"#),
            Err(ProtocolError::UnknownCommand("frobnicate".into())),
        );
    }

    #[test]
    fn run_needs_exactly_one_program_source() {
        assert!(parse_frame(r#"{"lis":1,"id":1,"cmd":"run","isa":"arm"}"#).is_err());
        assert!(parse_frame(
            r#"{"lis":1,"id":1,"cmd":"run","isa":"arm","kernel":"gcd","src":"halt"}"#
        )
        .is_err());
        assert!(parse_frame(r#"{"lis":1,"id":1,"cmd":"run","isa":"arm","src":".text"}"#).is_ok());
    }

    #[test]
    fn timing_presets_parse_as_string_arrays() {
        let f = parse_frame(
            r#"{"lis":1,"id":1,"cmd":"sweep-cell","kernels":["gcd"],"timings":["classic","stream"]}"#,
        )
        .expect("parses");
        let Request::SweepCell { kernels, timings, .. } = f.req else { panic!("wrong request") };
        assert_eq!(kernels, vec!["gcd"]);
        assert_eq!(timings, vec!["classic", "stream"]);

        let f = parse_frame(
            r#"{"lis":1,"id":2,"cmd":"trace-replay","path":"t.lst","timings":["minimal"]}"#,
        )
        .expect("parses");
        let Request::TraceReplay { timings, .. } = f.req else { panic!("wrong request") };
        assert_eq!(timings, vec!["minimal"]);

        // Absent means empty (the executor defaults to classic); mistyped is
        // a typed field error naming the key.
        let f = parse_frame(r#"{"lis":1,"id":3,"cmd":"sweep-cell"}"#).expect("parses");
        let Request::SweepCell { timings, .. } = f.req else { panic!("wrong request") };
        assert!(timings.is_empty());
        assert_eq!(
            parse_frame(r#"{"lis":1,"id":4,"cmd":"sweep-cell","timings":"classic"}"#),
            Err(ProtocolError::BadField("timings")),
        );
        assert_eq!(
            parse_frame(r#"{"lis":1,"id":5,"cmd":"trace-replay","path":"t","timings":[7]}"#),
            Err(ProtocolError::BadField("timings")),
        );
    }

    #[test]
    fn garbage_is_a_typed_error_never_a_panic() {
        for bad in [
            "",
            "run",
            "{",
            "[1,2,3]",
            "\"just a string\"",
            r#"{"lis":"one","id":1,"cmd":"status"}"#,
            r#"{"lis":1,"id":"x","cmd":"status"}"#,
            r#"{"lis":1,"id":1,"cmd":7}"#,
            r#"{"lis":1,"id":1,"cmd":"chaos"}"#,
            r#"{"lis":1,"id":1,"cmd":"sweep-cell","kernels":"gcd"}"#,
            r#"{"lis":1,"id":1,"cmd":"sweep-cell","kernels":[1]}"#,
            r#"{"lis":1,"id":1,"cmd":"trace-replay"}"#,
        ] {
            let err = parse_frame(bad).expect_err(bad);
            assert!(err.to_string().starts_with("protocol:"), "{err}");
        }
        let long =
            format!(r#"{{"lis":1,"id":1,"cmd":"status","pad":"{}"}}"#, "x".repeat(MAX_FRAME_LEN));
        assert!(matches!(parse_frame(&long), Err(ProtocolError::FrameTooLong(_))));
    }

    #[test]
    fn response_envelope_shape() {
        let ok = response(9, "status", 0, None, r#"{"x":1}"#);
        assert!(ok.contains(r#""id":9"#) && ok.contains(r#""ok":true"#));
        assert!(ok.contains(r#""result":{"x":1}"#));
        let err = response(9, "run", 2, Some("protocol: nope"), "");
        assert!(err.contains(r#""ok":false"#) && err.contains(r#""status":2"#));
        assert!(err.contains("protocol: nope") && !err.contains("result"));
        // Responses must themselves be parseable frames of our own JSON.
        crate::json::parse(&ok).expect("ok response is valid JSON");
        crate::json::parse(&err).expect("err response is valid JSON");
    }
}
