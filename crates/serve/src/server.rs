//! The daemon: a TCP accept loop, one session thread per connection, a
//! shared [`ArtifactStore`] + [`Scheduler`] behind them, and a graceful
//! drain on `shutdown` frames or SIGTERM/SIGINT.
//!
//! Blast-radius model, inside out: a panicking request is caught twice
//! (handler `catch_cell` and the worker's own) and becomes an `ok:false`
//! response; a malformed frame becomes a typed protocol error on the same
//! connection; a dead connection tears down one session thread; and only a
//! shutdown signal touches the daemon itself — which then stops accepting,
//! drains in-flight work under a deadline, snapshots whatever it had to
//! abandon, and exits [`EXIT_ABANDONED`] if that list was nonempty.

use crate::exec::{execute, Ctx, Outcome};
use crate::protocol::{self, parse_frame, ProtocolError, Request};
use crate::scheduler::{Scheduler, SubmitError};
use lis_core::JsonObj;
use lis_runtime::ArtifactStore;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Exit code when the drain deadline expired with work still queued or
/// running (distinct from every CLI failure code; documented in `lis help`).
pub const EXIT_ABANDONED: u8 = 6;

/// How a daemon is configured (the `lis serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on, e.g. `127.0.0.1:4915` or `127.0.0.1:0`.
    pub listen: String,
    /// Scheduler workers; 0 = one per available core (the shared `--jobs`
    /// policy from [`lis_harness::resolve_jobs`]).
    pub jobs: usize,
    /// How long a shutdown waits for in-flight work before abandoning it.
    pub drain_deadline: Duration,
    /// Optional per-request wall-clock deadline handed to each simulator.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:4915".to_string(),
            jobs: 0,
            drain_deadline: Duration::from_secs(10),
            deadline: None,
        }
    }
}

/// Daemon-wide shared state.
#[derive(Debug)]
struct ServerState {
    store: Arc<ArtifactStore>,
    sched: Arc<Scheduler>,
    deadline: Option<Duration>,
    /// Set by a `shutdown` frame or a termination signal; every loop in the
    /// daemon polls it.
    shutdown: AtomicBool,
    sessions_total: AtomicU64,
    sessions_active: AtomicUsize,
    started: Instant,
}

/// Signal flag: set from the SIGTERM/SIGINT handler, polled by the accept
/// loop. Process-global by nature (signals are).
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_term_handler() {
    extern "C" fn on_term(_sig: i32) {
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    // SIGTERM=15, SIGINT=2 on every unix we run on; the libc constants are
    // not available without a crate, and these two values are POSIX-stable.
    unsafe {
        signal(15, on_term as extern "C" fn(i32) as usize);
        signal(2, on_term as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

/// A bound-but-not-yet-running daemon. Splitting bind from run lets tests
/// (and `--listen 127.0.0.1:0`) learn the actual port before serving.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    drain_deadline: Duration,
}

impl Server {
    /// Binds the listen address and builds the shared state.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, bad address, ...).
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let workers = lis_harness::resolve_jobs(cfg.jobs, crate::scheduler::QUEUE_LIMIT);
        let state = Arc::new(ServerState {
            store: Arc::new(ArtifactStore::new()),
            sched: Arc::new(Scheduler::new(workers)),
            deadline: cfg.deadline,
            shutdown: AtomicBool::new(false),
            sessions_total: AtomicU64::new(0),
            sessions_active: AtomicUsize::new(0),
            started: Instant::now(),
        });
        Ok(Server { listener, state, drain_deadline: cfg.drain_deadline })
    }

    /// The daemon's actual listening address.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failure from the socket.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` frame or termination signal, then drains.
    /// Returns the process exit code: 0 for a clean drain, [`EXIT_ABANDONED`]
    /// if queued or in-flight work had to be abandoned (each abandoned job
    /// also leaves a `lis-serve-abandoned-*.txt` snapshot in the working
    /// directory).
    pub fn run(self) -> u8 {
        install_term_handler();
        while !self.state.shutdown.load(Ordering::SeqCst) {
            if TERM_REQUESTED.load(Ordering::SeqCst) {
                self.state.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    let n = self.state.sessions_total.fetch_add(1, Ordering::SeqCst);
                    self.state.sessions_active.fetch_add(1, Ordering::SeqCst);
                    let state = Arc::clone(&self.state);
                    let _ = std::thread::Builder::new()
                        .name(format!("lis-serve-session-{n}"))
                        .spawn(move || {
                            session_loop(stream, &state);
                            state.sessions_active.fetch_sub(1, Ordering::SeqCst);
                        });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        // Drain: no new submissions, wait for the queue and in-flight jobs.
        let report = self.state.sched.drain(self.drain_deadline);
        for (i, label) in report
            .abandoned_queued
            .iter()
            .map(|l| (l, "queued"))
            .chain(report.abandoned_running.iter().map(|l| (l, "running")))
            .enumerate()
            .map(|(i, (l, k))| (i, format!("{k}: {l}")))
        {
            let path = format!("lis-serve-abandoned-{}-{i}.txt", std::process::id());
            let _ = std::fs::write(
                &path,
                format!("abandoned at shutdown (drain deadline expired)\n{label}\n"),
            );
        }
        // Brief grace so session threads can flush their last responses.
        std::thread::sleep(Duration::from_millis(300));
        if report.clean() {
            0
        } else {
            EXIT_ABANDONED
        }
    }
}

/// Best-effort `id` recovery from a line that failed frame parsing, so the
/// error response still correlates when only a field (not the JSON) is bad.
fn salvage_id(line: &str) -> u64 {
    crate::json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(crate::json::Value::as_u64))
        .unwrap_or(0)
}

fn status_payload(state: &ServerState) -> String {
    let sched = state.sched.stats();
    let store = state.store.stats();
    let mut s = JsonObj::new();
    s.u64("workers", sched.workers as u64)
        .u64("executed", sched.executed)
        .u64("crashed", sched.crashed)
        .u64("queued", sched.queued as u64)
        .u64("active", sched.active as u64);
    let mut st = JsonObj::new();
    st.u64("hits", store.hits)
        .u64("misses", store.misses)
        .u64("inserts", store.inserts)
        .u64("entries", store.entries);
    let mut o = JsonObj::new();
    o.u64("uptime_ms", state.started.elapsed().as_millis() as u64)
        .u64("sessions_total", state.sessions_total.load(Ordering::SeqCst))
        .u64("sessions_active", state.sessions_active.load(Ordering::SeqCst) as u64)
        .bool("draining", state.shutdown.load(Ordering::SeqCst))
        .raw("scheduler", &s.finish())
        .raw("store", &st.finish());
    o.finish()
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// One connection: read frames, execute, respond — until EOF, a fatal socket
/// error, an oversized unterminated line, or daemon shutdown.
fn session_loop(stream: TcpStream, state: &ServerState) {
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if stream.set_read_timeout(Some(Duration::from_millis(250))).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if !trimmed.trim().is_empty() && !handle_line(trimmed, &mut out, state) {
                    return;
                }
                line.clear();
            }
            // Timeout mid-wait (or mid-line: partial bytes stay in `line`
            // and the next read continues the same frame).
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if line.len() > protocol::MAX_FRAME_LEN {
                    // An unterminated oversized frame cannot be resynced.
                    let resp = protocol::response(
                        0,
                        "?",
                        2,
                        Some(&ProtocolError::FrameTooLong(line.len()).to_string()),
                        "",
                    );
                    let _ = write_line(&mut out, &resp);
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one complete frame line. Returns `false` when the session should
/// close (shutdown acknowledged or the socket died).
fn handle_line(line: &str, out: &mut TcpStream, state: &ServerState) -> bool {
    let frame = match parse_frame(line) {
        Ok(f) => f,
        Err(e) => {
            let resp = protocol::response(salvage_id(line), "?", 2, Some(&e.to_string()), "");
            return write_line(out, &resp).is_ok();
        }
    };
    let cmd = frame.req.cmd();
    match frame.req {
        Request::Status => {
            let resp = protocol::response(frame.id, cmd, 0, None, &status_payload(state));
            write_line(out, &resp).is_ok()
        }
        Request::Shutdown => {
            state.shutdown.store(true, Ordering::SeqCst);
            let mut o = JsonObj::new();
            o.bool("draining", true);
            let resp = protocol::response(frame.id, cmd, 0, None, &o.finish());
            let _ = write_line(out, &resp);
            false
        }
        req => {
            let (tx, rx) = mpsc::channel::<Outcome>();
            let ctx = Ctx { store: Arc::clone(&state.store), deadline: state.deadline };
            let label = format!("{cmd}#{}", frame.id);
            let submitted = state.sched.submit(label, move || {
                let _ = tx.send(execute(&req, &ctx));
            });
            let outcome = match submitted {
                Ok(()) => match rx.recv() {
                    Ok(o) => o,
                    // Sender dropped without sending: the job panicked (the
                    // worker's catch_cell ate it) or was abandoned by drain.
                    Err(_) => Outcome {
                        status: 1,
                        payload: String::new(),
                        error: Some("request crashed or was abandoned (isolated)".to_string()),
                    },
                },
                Err(e @ (SubmitError::Draining | SubmitError::Full)) => {
                    Outcome { status: 1, payload: String::new(), error: Some(e.to_string()) }
                }
            };
            let resp = protocol::response(
                frame.id,
                cmd,
                outcome.status,
                outcome.error.as_deref(),
                &outcome.payload,
            );
            write_line(out, &resp).is_ok()
        }
    }
}
