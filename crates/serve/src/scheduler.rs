//! A bounded job scheduler for session requests: the sweep worker-pool
//! pattern (fixed workers, shared queue) generalized to a long-running
//! service. Every job runs under [`lis_harness::catch_cell`] panic
//! isolation, so one misbehaving request crashes alone — the worker thread,
//! the queue, and every other session survive.

use lis_harness::catch_cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on queued (not yet running) jobs; submissions beyond it are
/// rejected so a flooding client cannot grow the daemon without bound.
pub const QUEUE_LIMIT: usize = 256;

type Work = Box<dyn FnOnce() + Send + 'static>;

struct Job {
    label: String,
    work: Work,
}

struct Queue {
    jobs: VecDeque<Job>,
    /// Labels of jobs currently executing on a worker.
    running: Vec<String>,
    accepting: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    cv: Condvar,
    executed: AtomicU64,
    crashed: AtomicU64,
    active: AtomicUsize,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The scheduler is draining for shutdown.
    Draining,
    /// The queue is at [`QUEUE_LIMIT`].
    Full,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "scheduler is draining"),
            SubmitError::Full => write!(f, "scheduler queue is full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Point-in-time scheduler counters for `status` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs executed to completion (including crashed ones).
    pub executed: u64,
    /// Jobs whose closure panicked (isolated; the worker survived).
    pub crashed: u64,
    /// Jobs queued but not yet started.
    pub queued: usize,
    /// Jobs currently executing.
    pub active: usize,
}

/// What a drain left behind: labels of jobs that never ran (queued) and
/// jobs abandoned mid-flight when the deadline expired.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Every queued-but-never-started job label.
    pub abandoned_queued: Vec<String>,
    /// Every still-running job label at deadline expiry.
    pub abandoned_running: Vec<String>,
}

impl DrainReport {
    /// Whether the drain completed with nothing abandoned.
    pub fn clean(&self) -> bool {
        self.abandoned_queued.is_empty() && self.abandoned_running.is_empty()
    }
}

/// The bounded scheduler. Dropping it without [`Scheduler::drain`] detaches
/// the workers (they exit once the queue empties).
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").field("stats", &self.stats()).finish()
    }
}

impl Scheduler {
    /// Spawns `workers` pool threads (callers resolve the count with
    /// [`lis_harness::resolve_jobs`], the shared `--jobs` policy).
    pub fn new(workers: usize) -> Scheduler {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                running: Vec::new(),
                accepting: true,
            }),
            cv: Condvar::new(),
            executed: AtomicU64::new(0),
            crashed: AtomicU64::new(0),
            active: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lis-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler { inner, workers: handles }
    }

    /// Enqueues a job. The closure must do its own result delivery (e.g.
    /// over a channel) and is additionally wrapped in panic isolation here.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] after [`Scheduler::drain`] began, or
    /// [`SubmitError::Full`] at [`QUEUE_LIMIT`].
    pub fn submit(
        &self,
        label: impl Into<String>,
        work: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        let mut q = self.inner.queue.lock().expect("scheduler poisoned");
        if !q.accepting {
            return Err(SubmitError::Draining);
        }
        if q.jobs.len() >= QUEUE_LIMIT {
            return Err(SubmitError::Full);
        }
        q.jobs.push_back(Job { label: label.into(), work: Box::new(work) });
        drop(q);
        self.inner.cv.notify_one();
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> SchedulerStats {
        let q = self.inner.queue.lock().expect("scheduler poisoned");
        SchedulerStats {
            workers: self.workers.len(),
            executed: self.inner.executed.load(Ordering::Relaxed),
            crashed: self.inner.crashed.load(Ordering::Relaxed),
            queued: q.jobs.len(),
            active: self.inner.active.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting work and waits up to `deadline` for the queue and
    /// all in-flight jobs to finish. Takes `&self` so sessions can keep a
    /// shared handle while the server drains; once draining begins the
    /// workers exit on their own as the queue empties (their join handles
    /// detach when the scheduler drops — jobs are never killed mid-cell).
    /// Anything still queued or running at deadline expiry is reported.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        {
            let mut q = self.inner.queue.lock().expect("scheduler poisoned");
            q.accepting = false;
        }
        self.inner.cv.notify_all();
        let t0 = Instant::now();
        loop {
            let (queued, active) = {
                let q = self.inner.queue.lock().expect("scheduler poisoned");
                (q.jobs.len(), self.inner.active.load(Ordering::Relaxed))
            };
            if queued == 0 && active == 0 {
                return DrainReport::default();
            }
            if t0.elapsed() >= deadline {
                let mut q = self.inner.queue.lock().expect("scheduler poisoned");
                return DrainReport {
                    abandoned_queued: q.jobs.drain(..).map(|j| j.label).collect(),
                    abandoned_running: q.running.clone(),
                };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("scheduler poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    // Mark active while still holding the lock, so a drain
                    // probe never observes "queue empty, nothing active"
                    // between pop and execution.
                    inner.active.fetch_add(1, Ordering::SeqCst);
                    q.running.push(job.label.clone());
                    break job;
                }
                if !q.accepting {
                    return;
                }
                q = inner.cv.wait(q).expect("scheduler poisoned");
            }
        };
        // The job closure delivers its own result; a panic inside is
        // isolated here (belt) in addition to the handler's own catch_cell
        // (suspenders), so the worker thread always survives.
        if catch_cell(job.work).is_err() {
            inner.crashed.fetch_add(1, Ordering::Relaxed);
        }
        inner.executed.fetch_add(1, Ordering::Relaxed);
        let mut q = inner.queue.lock().expect("scheduler poisoned");
        if let Some(i) = q.running.iter().position(|l| l == &job.label) {
            q.running.swap_remove(i);
        }
        drop(q);
        inner.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_jobs_and_reports_results_through_channels() {
        let sched = Scheduler::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..32u64 {
            let tx = tx.clone();
            sched.submit(format!("job-{i}"), move || tx.send(i * i).expect("recv alive")).unwrap();
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
        let report = sched.drain(Duration::from_secs(5));
        assert!(report.clean(), "{report:?}");
    }

    #[test]
    fn a_panicking_job_crashes_alone() {
        let sched = Scheduler::new(2);
        let (tx, rx) = mpsc::channel();
        sched.submit("bomb", || panic!("job panic")).unwrap();
        for _ in 0..8 {
            let tx = tx.clone();
            sched.submit("ok", move || tx.send(1).expect("recv alive")).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().sum::<u64>(), 8, "survivors all ran");
        // Drain first: counters settle only once every job (including the
        // bomb, which spends a while printing its backtrace) has finished.
        assert!(sched.drain(Duration::from_secs(5)).clean());
        let stats = sched.stats();
        assert_eq!(stats.crashed, 1);
        assert_eq!(stats.executed, 9);
    }

    #[test]
    fn drain_refuses_new_work_and_reports_abandoned_jobs() {
        let sched = Scheduler::new(1);
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        // One job wedges the only worker...
        sched
            .submit("wedged", move || {
                let _ = hold_rx.recv_timeout(Duration::from_secs(10));
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // ...and one waits behind it, never to run.
        sched.submit("starved", || {}).unwrap();
        let report = sched.drain(Duration::from_millis(100));
        assert_eq!(report.abandoned_running, vec!["wedged".to_string()]);
        assert_eq!(report.abandoned_queued, vec!["starved".to_string()]);
        assert!(!report.clean());
        hold_tx.send(()).ok();
    }

    #[test]
    fn submissions_after_drain_are_rejected() {
        let sched = Scheduler::new(1);
        assert!(sched.drain(Duration::from_secs(1)).clean());
        // The queue is closed for good: late submissions are refused.
        assert_eq!(sched.submit("late", || {}), Err(SubmitError::Draining));
        assert_eq!(sched.stats().executed, 0);
    }
}
