//! Request execution: each protocol operation mapped onto the existing
//! toolkit (`lis_runtime`, `lis_harness`, `lis_bench`, `lis_trace`) with the
//! CLI's exit-code vocabulary as the per-request `status`.
//!
//! The shared [`ArtifactStore`] is consulted only by clean `run` requests:
//! a warm hit seeds the simulator before execution, and a clean cold run
//! (halted, no chaos ever armed, no fallbacks, no demotions) publishes its
//! caches for later sessions of the same key. Chaos requests never touch
//! the store in either direction — their caches follow per-session
//! invalidation rules, and a translate-poisoned superblock is cached
//! *poisoned by design*, so the export side is double-gated (handler policy
//! here, sticky taint flag in the engine).

use crate::protocol::Request;
use lis_core::JsonObj;
use lis_harness::{chaos_run, verify_all, verify_isa, ChaosConfig, ChaosOutcome, VerifyConfig};
use lis_runtime::{ArtifactKey, ArtifactStore, Backend, ChaosPlan, SimStop, Simulator};
use std::sync::Arc;
use std::time::Duration;

/// Shared context a request executes against.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// The daemon-wide artifact store.
    pub store: Arc<ArtifactStore>,
    /// Per-request wall-clock deadline, if the daemon was started with one.
    pub deadline: Option<Duration>,
}

/// The result of executing one request: a CLI-vocabulary status code, a
/// rendered JSON payload for the response's `result` field (may be empty),
/// and an optional error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// 0 clean, 1 error, 2 usage/divergence, 3 storm/deadline, 4 corrupt
    /// trace, 5 lint.
    pub status: u8,
    /// Rendered JSON object, or empty.
    pub payload: String,
    /// Human-readable error, present whenever `status != 0`.
    pub error: Option<String>,
}

impl Outcome {
    fn ok(payload: String) -> Outcome {
        Outcome { status: 0, payload, error: None }
    }

    fn fail(status: u8, error: impl Into<String>) -> Outcome {
        Outcome { status, payload: String::new(), error: Some(error.into()) }
    }
}

/// Executes one request. Infallible by construction: every failure becomes
/// a nonzero-status [`Outcome`] (panics are caught one layer up).
pub fn execute(req: &Request, ctx: &Ctx) -> Outcome {
    match req {
        Request::Run { isa, kernel, src, buildset, backend, max } => {
            exec_run(ctx, isa, kernel.as_deref(), src.as_deref(), buildset, backend, *max)
        }
        Request::Verify { isa, full } => exec_verify(isa, *full),
        Request::Chaos { isa, kernel, buildset, backend, seed, period, runs, unmap, translate } => {
            exec_chaos(isa, kernel, buildset, backend, *seed, *period, *runs, *unmap, *translate)
        }
        Request::SweepCell { kernels, backends, timings, max } => {
            exec_sweep_cell(kernels, backends, timings, *max)
        }
        Request::TraceReplay { path, shards, timings } => exec_trace_replay(path, *shards, timings),
        // Handled at the session layer; reaching here is a daemon bug.
        Request::Status | Request::Shutdown => Outcome::fail(1, "internal: unroutable request"),
    }
}

fn backend_of(name: &str) -> Result<Backend, Outcome> {
    match name {
        "cached" => Ok(Backend::Cached),
        "interpreted" => Ok(Backend::Interpreted),
        "compiled" => Ok(Backend::Compiled),
        other => Err(Outcome::fail(2, format!("unknown backend `{other}`"))),
    }
}

fn spec_of(isa: &str) -> Result<&'static lis_core::IsaSpec, Outcome> {
    if lis_workloads::ISAS.contains(&isa) {
        Ok(lis_workloads::spec_of(isa))
    } else {
        Err(Outcome::fail(2, format!("unknown ISA `{isa}` (alpha|arm|ppc)")))
    }
}

fn buildset_of(name: &str) -> Result<lis_core::BuildsetDef, Outcome> {
    lis_core::find_buildset(name)
        .copied()
        .ok_or_else(|| Outcome::fail(2, format!("unknown buildset `{name}`")))
}

fn image_of(isa: &str, kernel: Option<&str>, src: Option<&str>) -> Result<lis_mem::Image, Outcome> {
    match (kernel, src) {
        (Some(k), None) => lis_workloads::kernel(isa, k)
            .ok_or_else(|| Outcome::fail(2, format!("unknown kernel `{k}`")))?
            .assemble()
            .map_err(|e| Outcome::fail(1, e.to_string())),
        (None, Some(s)) => {
            lis_workloads::assemble_source(isa, s).map_err(|e| Outcome::fail(1, e.to_string()))
        }
        _ => Err(Outcome::fail(2, "need exactly one of kernel|src")),
    }
}

fn build_sim(
    spec: &'static lis_core::IsaSpec,
    bs: lis_core::BuildsetDef,
) -> Result<Simulator, Outcome> {
    Simulator::new(spec, bs).map_err(|e| match e {
        lis_runtime::BuildError::Lint { .. } => Outcome::fail(5, e.to_string()),
        other => Outcome::fail(1, other.to_string()),
    })
}

fn exec_run(
    ctx: &Ctx,
    isa: &str,
    kernel: Option<&str>,
    src: Option<&str>,
    buildset: &str,
    backend: &str,
    max: u64,
) -> Outcome {
    let (spec, bs, backend, image) =
        match (spec_of(isa), buildset_of(buildset), backend_of(backend)) {
            (Ok(s), Ok(b), Ok(be)) => match image_of(isa, kernel, src) {
                Ok(img) => (s, b, be, img),
                Err(o) => return o,
            },
            (Err(o), _, _) | (_, Err(o), _) | (_, _, Err(o)) => return o,
        };
    let key = ArtifactKey::new(isa, &image, bs.name, backend);
    let shared = ctx.store.get(&key);

    let mut sim = match build_sim(spec, bs) {
        Ok(s) => s,
        Err(o) => return o,
    };
    sim.set_backend(backend);
    if let Some(d) = ctx.deadline {
        sim.set_deadline(d);
    }
    if let Err(f) = sim.load_program(&image) {
        return Outcome::fail(1, f.to_string());
    }
    let seeded = match &shared {
        // A mismatch here means the store was fed a colliding key — surface
        // it instead of silently running cold.
        Some(art) => match sim.seed_artifacts(art) {
            Ok(n) => n as u64,
            Err(e) => return Outcome::fail(1, format!("artifact store: {e}")),
        },
        None => 0,
    };

    match sim.run_to_halt(max) {
        Ok(summary) => {
            // Publish a clean cold run's caches: halted, never chaos-armed
            // (run requests can't arm chaos, but the taint gate also guards
            // engine reuse bugs), no trust degradations.
            if shared.is_none()
                && summary.halted
                && sim.stats.fallback_blocks == 0
                && sim.demotion_events().is_empty()
            {
                if let Some(art) = sim.export_artifacts() {
                    ctx.store.insert(key, Arc::new(art));
                }
            }
            let mut o = JsonObj::new();
            o.i64("exit_code", summary.exit_code)
                .bool("halted", summary.halted)
                .bool("warm", shared.is_some())
                .u64("seeded", seeded)
                .str("stdout", &String::from_utf8_lossy(sim.stdout()))
                .raw("stats", &sim.stats.to_json());
            Outcome::ok(o.finish())
        }
        Err(SimStop::Deadline) => Outcome::fail(3, "wall-clock deadline expired"),
        Err(stop) => Outcome::fail(1, stop.to_string()),
    }
}

fn exec_verify(isa: &str, full: bool) -> Outcome {
    let cfg = if full { VerifyConfig::full() } else { VerifyConfig::default() };
    let report = if isa.is_empty() {
        verify_all(&cfg)
    } else {
        if let Err(o) = spec_of(isa) {
            return o;
        }
        verify_isa(isa, &cfg)
    };
    let mut o = JsonObj::new();
    o.u64("jobs", report.jobs as u64)
        .u64("insts", report.insts)
        .u64("divergences", report.failures.len() as u64)
        .bool("ok", report.ok());
    let payload = o.finish();
    if report.ok() {
        Outcome::ok(payload)
    } else {
        let first =
            report.failures.first().map(|f| f.job.clone()).unwrap_or_else(|| "?".to_string());
        Outcome {
            status: 2,
            payload,
            error: Some(format!("{} divergence(s); first: {first}", report.failures.len())),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_chaos(
    isa: &str,
    kernel: &str,
    buildset: &str,
    backend: &str,
    seed: u64,
    period: u64,
    runs: u64,
    unmap: bool,
    translate: bool,
) -> Outcome {
    let (spec, bs, backend) = match (spec_of(isa), buildset_of(buildset), backend_of(backend)) {
        (Ok(s), Ok(b), Ok(be)) => (s, b, be),
        (Err(o), _, _) | (_, Err(o), _) | (_, _, Err(o)) => return o,
    };
    let image = match image_of(isa, Some(kernel), None) {
        Ok(img) => img,
        Err(o) => return o,
    };
    let cfg = ChaosConfig::default();
    let mut worst = 0u8;
    let (mut survived, mut storms, mut deadlines, mut events) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..runs {
        let plan = ChaosPlan {
            seed: seed.wrapping_add(i),
            flip_period: Some(period),
            data_fault_period: Some(period),
            unmap_period: unmap.then_some(period),
            translate_fault_period: translate.then_some(period),
            start: 0,
            max_events: 0,
        };
        let report = match chaos_run(spec, &image, bs, backend, plan, &cfg) {
            Ok(r) => r,
            Err(e) => return Outcome::fail(1, e.to_string()),
        };
        events += report.events.len() as u64;
        match report.outcome {
            ChaosOutcome::Halted { .. } | ChaosOutcome::Budget => survived += 1,
            ChaosOutcome::Storm => {
                storms += 1;
                worst = worst.max(3);
            }
            ChaosOutcome::Deadline => {
                deadlines += 1;
                worst = worst.max(3);
            }
        }
    }
    let mut o = JsonObj::new();
    o.u64("runs", runs)
        .u64("survived", survived)
        .u64("storms", storms)
        .u64("deadlines", deadlines)
        .u64("events", events);
    let payload = o.finish();
    if worst == 0 {
        Outcome::ok(payload)
    } else {
        Outcome {
            status: worst,
            payload,
            error: Some(format!("{storms} fault storm(s), {deadlines} deadline(s)")),
        }
    }
}

fn exec_sweep_cell(kernels: &[String], backends: &str, timings: &[String], max: u64) -> Outcome {
    let backends = match backends {
        "cached" => vec![Backend::Cached],
        "interpreted" => vec![Backend::Interpreted],
        "compiled" => vec![Backend::Compiled],
        "both" => vec![Backend::Cached, Backend::Interpreted],
        "all" => vec![Backend::Cached, Backend::Interpreted, Backend::Compiled],
        other => {
            return Outcome::fail(
                2,
                format!("unknown backends `{other}` (cached|interpreted|compiled|both|all)"),
            )
        }
    };
    let timings = match lis_bench::resolve_timings(timings) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(2, e),
    };
    // One worker: the scheduler already provides request-level parallelism,
    // and the sweep JSON is jobs-invariant (that is the point of the
    // byte-identity check the CI job runs against `lis sweep`).
    let cfg = lis_bench::SweepConfig {
        jobs: 1,
        kernels: kernels.to_vec(),
        backends,
        timings,
        max_insts: max,
        ..lis_bench::SweepConfig::default()
    };
    let report = match lis_bench::run_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => return Outcome::fail(2, e),
    };
    let bad = report
        .cells
        .iter()
        .filter(|c| {
            c.deadline_expired
                || c.fault.is_some()
                || !c.halted
                || c.exit_code != 0
                || c.crashes > 0
        })
        .count();
    let mut o = JsonObj::new();
    o.u64("cells", report.cells.len() as u64)
        .u64("bad_cells", bad as u64)
        // The exact bytes `lis sweep` would write (minus the trailing
        // newline), shipped as a string so a client can byte-compare.
        .str("sweep", &lis_bench::sweep::to_json(&report));
    let payload = o.finish();
    if bad == 0 {
        Outcome::ok(payload)
    } else {
        Outcome { status: 3, payload, error: Some(format!("{bad} cell(s) failed")) }
    }
}

fn exec_trace_replay(path: &str, shards: usize, timings: &[String]) -> Outcome {
    let presets = match lis_bench::resolve_timings(timings) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(2, e),
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => return Outcome::fail(1, format!("{path}: {e}")),
    };
    let trace = match lis_trace::Trace::read_from(std::io::BufReader::new(file)) {
        Ok(t) => t,
        Err(e) => return Outcome::fail(4, format!("trace integrity failure: {e}")),
    };
    let spec = match spec_of(&trace.meta.isa) {
        Ok(s) => s,
        Err(o) => return o,
    };
    // The trace is read once; each preset is a separate re-timing pass over
    // the same recording. `report` stays the first preset's report so
    // single-preset clients keep their shape; `reports` carries the whole
    // set tagged by preset name.
    let mut reports = Vec::with_capacity(presets.len());
    for preset in &presets {
        let cfg = lis_trace::ReplayConfig {
            shards,
            core: lis_timing::CoreConfig { timing: *preset, ..Default::default() },
            ..Default::default()
        };
        match lis_trace::replay_ooo(spec, &trace, &cfg) {
            Ok(report) => reports.push((preset.name, report)),
            Err(e) => return Outcome::fail(4, format!("trace integrity failure: {e}")),
        }
    }
    let mut o = JsonObj::new();
    o.u64("insts", reports[0].1.insts)
        .u64("shards", shards as u64)
        .raw("report", &reports[0].1.to_json());
    if reports.len() > 1 {
        let mut arr = String::from("[");
        for (i, (name, report)) in reports.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            let mut ro = JsonObj::new();
            ro.str("timing", name).raw("report", &report.to_json());
            arr.push_str(&ro.finish());
        }
        arr.push(']');
        o.raw("reports", &arr);
    }
    Outcome::ok(o.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Ctx {
        Ctx { store: Arc::new(ArtifactStore::new()), deadline: None }
    }

    fn run_req(isa: &str, kernel: &str, buildset: &str, backend: &str) -> Request {
        Request::Run {
            isa: isa.into(),
            kernel: Some(kernel.into()),
            src: None,
            buildset: buildset.into(),
            backend: backend.into(),
            max: 100_000_000,
        }
    }

    #[test]
    fn run_cold_then_warm_shares_translations() {
        let ctx = ctx();
        let req = run_req("alpha", "gcd", "block-all", "compiled");
        let cold = execute(&req, &ctx);
        assert_eq!(cold.status, 0, "{:?}", cold.error);
        assert!(cold.payload.contains(r#""warm":false"#), "{}", cold.payload);
        assert!(cold.payload.contains(r#""seeded":0"#));

        let warm = execute(&req, &ctx);
        assert_eq!(warm.status, 0);
        assert!(warm.payload.contains(r#""warm":true"#), "{}", warm.payload);
        assert!(warm.payload.contains(r#""blocks_built":0"#), "{}", warm.payload);
        assert!(!warm.payload.contains(r#""seeded":0"#), "warm run adopted blocks");

        let s = ctx.store.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);

        // Same outputs both ways.
        let stdout = |p: &str| {
            let v = crate::json::parse(p).expect("payload parses");
            v.get("stdout").and_then(crate::json::Value::as_str).map(str::to_string)
        };
        assert_eq!(stdout(&cold.payload), stdout(&warm.payload));
    }

    #[test]
    fn run_usage_errors_are_status_2() {
        let ctx = ctx();
        for req in [
            run_req("vax", "gcd", "block-all", "cached"),
            run_req("alpha", "nope", "block-all", "cached"),
            run_req("alpha", "gcd", "block-everything", "cached"),
            run_req("alpha", "gcd", "block-all", "jit"),
        ] {
            let out = execute(&req, &ctx);
            assert_eq!(out.status, 2, "{req:?}");
            assert!(out.error.is_some());
        }
        assert_eq!(ctx.store.stats().entries, 0, "failed requests publish nothing");
    }

    #[test]
    fn chaos_never_touches_the_store() {
        let ctx = ctx();
        let req = Request::Chaos {
            isa: "alpha".into(),
            kernel: "strrev".into(),
            buildset: "block-all".into(),
            backend: "compiled".into(),
            seed: 0xC0FFEE,
            period: 200,
            runs: 2,
            unmap: false,
            translate: true,
        };
        let out = execute(&req, &ctx);
        assert!(out.status == 0 || out.status == 3, "{out:?}");
        assert!(out.payload.contains(r#""runs":2"#));
        let s = ctx.store.stats();
        assert_eq!(
            (s.hits, s.misses, s.inserts, s.entries),
            (0, 0, 0, 0),
            "chaos must bypass the shared store entirely"
        );
    }

    #[test]
    fn verify_quick_single_isa_is_clean() {
        let out = exec_verify("alpha", false);
        assert_eq!(out.status, 0, "{:?}", out.error);
        assert!(out.payload.contains(r#""divergences":0"#));
        assert!(out.payload.contains(r#""ok":true"#));
    }

    #[test]
    fn trace_replay_rejects_garbage_with_status_4() {
        let dir = std::env::temp_dir().join("lis-serve-exec-test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("garbage.lst");
        std::fs::write(&path, b"not a trace at all").expect("write");
        let out = exec_trace_replay(path.to_str().expect("utf8 path"), 1, &[]);
        assert_eq!(out.status, 4);
        let missing = exec_trace_replay("/nonexistent/trace.lst", 1, &[]);
        assert_eq!(missing.status, 1);
        let bad_preset = exec_trace_replay("/nonexistent/trace.lst", 1, &["nope".into()]);
        assert_eq!(bad_preset.status, 2, "unknown preset is usage, checked first");
    }

    #[test]
    fn trace_replay_retimes_one_recording_under_several_presets() {
        let dir = std::env::temp_dir().join("lis-serve-exec-test");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("retimed.lst");
        let image = lis_workloads::kernel("alpha", "gcd")
            .expect("bundled kernel")
            .assemble()
            .expect("assembles");
        let file = std::fs::File::create(&path).expect("create");
        lis_trace::record(
            lis_workloads::spec_of("alpha"),
            &image,
            std::io::BufWriter::new(file),
            &lis_trace::RecordOptions::default(),
        )
        .expect("records");

        let out = exec_trace_replay(
            path.to_str().expect("utf8 path"),
            1,
            &["classic".into(), "minimal".into()],
        );
        assert_eq!(out.status, 0, "{:?}", out.error);
        assert!(out.payload.contains(r#""timing":"classic""#), "{}", out.payload);
        assert!(out.payload.contains(r#""timing":"minimal""#), "{}", out.payload);
        let v = crate::json::parse(&out.payload).expect("payload parses");
        let reports = v.get("reports").and_then(crate::json::Value::as_arr).expect("reports");
        assert_eq!(reports.len(), 2);
        let cycles = |r: &crate::json::Value| {
            r.get("report").and_then(|p| p.get("cycles")).and_then(crate::json::Value::as_u64)
        };
        let insts = |r: &crate::json::Value| {
            r.get("report").and_then(|p| p.get("insts")).and_then(crate::json::Value::as_u64)
        };
        assert_eq!(insts(&reports[0]), insts(&reports[1]), "same functional recording");
        assert_ne!(
            cycles(&reports[0]),
            cycles(&reports[1]),
            "presets must change the cycle count on gcd"
        );
    }
}
