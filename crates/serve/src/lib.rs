//! # lis-serve — the multi-session simulation service
//!
//! A long-running daemon (`lis serve --listen <addr>`) that accepts
//! concurrent client sessions over a line-delimited JSON protocol and
//! executes simulation work — runs, verification, chaos campaigns, sweep
//! cells, trace replays — on a bounded worker-pool scheduler. The paper's
//! single-specification principle makes this shape natural: because every
//! simulator is generated from the same interface specification, their
//! *translation artifacts* (predecoded blocks, compiled superblocks) are
//! plain data keyed only by `(ISA, image content, buildset, backend)`, so a
//! daemon can share one content-addressed [`lis_runtime::ArtifactStore`]
//! across every session and warm-start later sessions from earlier ones.
//!
//! Layering, bottom up:
//!
//! * [`json`] — a dependency-free strict JSON parser for request frames
//!   (hostile input is a parse error, never a panic);
//! * [`protocol`] — versioned frames, typed rejection errors, and the
//!   response envelope whose `status` field reuses the CLI exit-code
//!   vocabulary;
//! * [`scheduler`] — the bounded job pool (sweep's worker-pool pattern as a
//!   service): panic-isolated jobs, a queue cap against flooding clients,
//!   and a deadline-bounded drain that reports abandoned work;
//! * [`exec`] — request handlers over the existing toolkit, including the
//!   shared-store warm-start/publish policy and its taint gating;
//! * [`server`] — the accept loop, session threads, signal handling, and
//!   graceful shutdown with exit code [`EXIT_ABANDONED`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use exec::{execute, Ctx, Outcome};
pub use protocol::{parse_frame, Frame, ProtocolError, Request, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use scheduler::{DrainReport, Scheduler, SchedulerStats, SubmitError, QUEUE_LIMIT};
pub use server::{ServeConfig, Server, EXIT_ABANDONED};
