//! Lossless round-trip and projection properties of the trace format.
//!
//! * decode → re-encode is **byte-identical** (the encoding is canonical:
//!   deterministic flush rule, per-chunk delta reset, zeroed hidden slots);
//! * projecting to the trace's own visibility is the identity;
//! * projecting a maximum-detail recording down to a lower visibility
//!   yields exactly the record stream a direct lower-detail recording
//!   publishes — the single-specification principle, on data.

use lis_core::{Visibility, BLOCK_ALL, BLOCK_DECODE};
use lis_mem::Image;
use lis_trace::{record, RecordOptions, Trace, TraceWriter};
use lis_workloads::{assemble_source, gen::random_program, kernel, spec_of, ISAS};

/// Small chunk target so even short programs span several chunks.
const CHUNK: usize = 2048;

fn programs(isa: &str) -> Vec<(String, Image)> {
    let mut out = Vec::new();
    let w = kernel(isa, "sieve").expect("sieve exists");
    out.push(("sieve".to_string(), w.assemble().expect("kernel assembles")));
    for seed in [1u64, 2, 3] {
        let src = random_program(isa, seed, 80);
        let image = assemble_source(isa, &src).expect("generated program assembles");
        out.push((format!("rand-{seed}"), image));
    }
    out
}

fn record_with(isa: &str, image: &Image, name: &str, buildset: lis_core::BuildsetDef) -> Vec<u8> {
    let spec = spec_of(isa);
    let mut bytes = Vec::new();
    let opts = RecordOptions {
        buildset,
        kernel: name.to_string(),
        chunk_target: CHUNK,
        ..Default::default()
    };
    record(spec, image, &mut bytes, &opts).expect("recording succeeds");
    bytes
}

#[test]
fn rerecord_is_byte_identical() {
    for isa in ISAS {
        for (name, image) in programs(isa) {
            let bytes = record_with(isa, &image, &name, BLOCK_ALL);
            let trace = Trace::read_from(bytes.as_slice()).expect("trace reads back");
            let records = trace.records(None).expect("records decode");
            assert_eq!(records.len() as u64, trace.insts(), "{isa}/{name}: record count");

            let mut rewritten = TraceWriter::with_chunk_target(Vec::new(), &trace.meta, CHUNK)
                .expect("writer opens");
            for rec in &records {
                rewritten.push(rec).expect("record re-encodes");
            }
            let rewritten = rewritten.finish(&trace.footer).expect("footer writes");
            assert_eq!(rewritten, bytes, "{isa}/{name}: decode → re-encode must be byte-identical");
        }
    }
}

#[test]
fn projecting_to_own_visibility_is_identity() {
    for isa in ISAS {
        let (name, image) = &programs(isa)[0];
        let bytes = record_with(isa, image, name, BLOCK_ALL);
        let trace = Trace::read_from(bytes.as_slice()).expect("trace reads back");
        let plain = trace.records(None).expect("records decode");
        // BLOCK_ALL records carry full visibility, so both the trace's own
        // mask and Visibility::ALL must leave every record untouched.
        for vis in [trace.meta.visibility, Visibility::ALL] {
            let projected = trace.records(Some(vis)).expect("projection decodes");
            assert_eq!(projected, plain, "{isa}: full-visibility projection is identity");
        }
    }
}

#[test]
fn projection_matches_direct_lower_detail_recording() {
    for isa in ISAS {
        for (name, image) in programs(isa) {
            let full = record_with(isa, &image, &name, BLOCK_ALL);
            let direct = record_with(isa, &image, &name, BLOCK_DECODE);

            let full = Trace::read_from(full.as_slice()).expect("full trace reads");
            let direct = Trace::read_from(direct.as_slice()).expect("direct trace reads");

            // Same program, same block semantic: identical retirement stream
            // and identical whole-run interface statistics.
            assert_eq!(full.insts(), direct.insts(), "{isa}/{name}: record counts");
            assert_eq!(
                full.footer.stats.calls, direct.footer.stats.calls,
                "{isa}/{name}: interface call counts"
            );

            let projected =
                full.records(Some(BLOCK_DECODE.visibility)).expect("projection decodes");
            let published = direct.records(None).expect("direct records decode");
            assert_eq!(
                projected, published,
                "{isa}/{name}: projecting the max-detail trace must equal the \
                 record stream a direct BLOCK_DECODE run publishes"
            );
        }
    }
}

#[test]
fn header_describes_the_recording() {
    let (name, image) = &programs("alpha")[0];
    let bytes = record_with("alpha", image, name, BLOCK_ALL);
    let trace = Trace::read_from(bytes.as_slice()).expect("trace reads back");
    assert_eq!(trace.meta.isa, "alpha");
    assert_eq!(trace.meta.buildset, BLOCK_ALL.name);
    assert_eq!(trace.meta.kernel, "sieve");
    assert!(!trace.meta.fields.is_empty(), "field dictionary present");
    assert!(trace.footer.halted, "sieve halts");
    assert!(trace.chunks.len() > 1, "small chunk target yields several chunks");
}
