//! Varint/delta boundary values: the encodings that sit at the edge of the
//! wire format's number line — `u64::MAX` PC deltas, sign flips straddling
//! chunk-reset boundaries, 1-record chunks, and saturated footer counters —
//! must all round-trip **byte-identically** through decode → re-encode.

use lis_core::{InstHeader, Semantic, Visibility};
use lis_runtime::SimStats;
use lis_trace::{Cursor, Trace, TraceFooter, TraceMeta, TraceRecord, TraceWriter};

fn meta() -> TraceMeta {
    TraceMeta {
        isa: "alpha".into(),
        buildset: "block-all".into(),
        visibility: Visibility::ALL,
        semantic: Semantic::Block,
        speculation: false,
        kernel: "boundary".into(),
        seed: 0,
        fields: vec![],
    }
}

fn rec(pc: u64, next_pc: u64) -> TraceRecord {
    TraceRecord {
        header: InstHeader { pc, phys_pc: pc, instr_bits: 0xABCD_EF01, next_pc },
        ..Default::default()
    }
}

fn write_trace(recs: &[TraceRecord], chunk_target: usize) -> Vec<u8> {
    let mut w =
        TraceWriter::with_chunk_target(Vec::new(), &meta(), chunk_target).expect("writer opens");
    for r in recs {
        w.push(r).expect("record encodes");
    }
    let footer = TraceFooter { insts: recs.len() as u64, ..Default::default() };
    w.finish(&footer).expect("footer writes")
}

/// Reads `bytes` back, checks the records survive, re-encodes with the same
/// chunk target, and demands the exact original bytes.
fn assert_byte_identical(recs: &[TraceRecord], bytes: &[u8], chunk_target: usize) -> Trace {
    let trace = Trace::read_from(bytes).expect("trace reads back");
    let decoded = trace.records(None).expect("records decode");
    assert_eq!(decoded, recs, "decoded records differ");
    let mut w = TraceWriter::with_chunk_target(Vec::new(), &trace.meta, chunk_target)
        .expect("writer reopens");
    for r in &decoded {
        w.push(r).expect("record re-encodes");
    }
    let out = w.finish(&trace.footer).expect("footer rewrites");
    assert_eq!(out, bytes, "decode → re-encode must be byte-identical");
    trace
}

#[test]
fn u64_max_deltas_round_trip_byte_identically() {
    // PC teleports across the whole address space: the signed delta against
    // the previous record's next_pc wraps through both i64 extremes.
    let recs = [
        rec(0, 4),
        rec(u64::MAX, 0),            // delta +(MAX-4), next wraps to 0
        rec(0, u64::MAX),            // pc equals prev next_pc (seq flag)
        rec(1, u64::MAX - 1),        // delta -(MAX-2)
        rec(u64::MAX - 1, u64::MAX), // forward again
    ];
    let bytes = write_trace(&recs, 1 << 20); // one chunk holds everything
    let trace = assert_byte_identical(&recs, &bytes, 1 << 20);
    assert_eq!(trace.chunks.len(), 1);
}

#[test]
fn sign_flips_at_chunk_reset_boundaries_round_trip() {
    // Chunk target 1 byte: every record flushes its own chunk, so each
    // record's delta is taken against the reset state (prev_next_pc = 0),
    // alternating between a large positive and a large negative first delta.
    let recs: Vec<TraceRecord> = (0..8u64)
        .map(|i| {
            if i % 2 == 0 {
                rec(u64::MAX - i, 8) // negative as i64: sign flip
            } else {
                rec(i, u64::MAX - 8) // positive small pc
            }
        })
        .collect();
    let bytes = write_trace(&recs, 1);
    let trace = assert_byte_identical(&recs, &bytes, 1);
    assert_eq!(trace.chunks.len(), recs.len(), "each record is its own chunk");
    for (_, ninsts) in &trace.chunks {
        assert_eq!(*ninsts, 1, "1-record chunks");
    }
}

#[test]
fn one_record_chunk_round_trips() {
    let recs = [rec(u64::MAX, 0)];
    let bytes = write_trace(&recs, 1);
    let trace = assert_byte_identical(&recs, &bytes, 1);
    assert_eq!(trace.chunks.len(), 1);
    assert_eq!(trace.chunks[0].1, 1);
    assert_eq!(trace.insts(), 1);
}

#[test]
fn record_codec_at_delta_extremes() {
    // Direct record-level checks of the zigzag delta paths, including the
    // phys_pc and next_pc deltas, against both reset and saturated states.
    let mut r = rec(u64::MAX, 0);
    r.header.phys_pc = 0; // phys delta = -MAX (wrapping)
    for prev in [0u64, u64::MAX, 1] {
        let mut buf = Vec::new();
        r.encode(&mut buf, prev);
        let mut cur = Cursor::new(&buf);
        let back = TraceRecord::decode(&mut cur, prev).expect("decodes");
        assert!(cur.at_end());
        assert_eq!(back, r, "prev_next_pc={prev:#x}");
    }
}

#[test]
fn footer_with_saturated_counters_round_trips() {
    // Every footer counter at u64::MAX: the 10-byte LEB128 ceiling.
    let f = TraceFooter {
        insts: u64::MAX,
        stats: SimStats {
            insts: u64::MAX,
            calls: u64::MAX,
            blocks: u64::MAX,
            faults: u64::MAX,
            blocks_built: u64::MAX,
            checkpoints: u64::MAX,
            rollbacks: u64::MAX,
            fallback_blocks: u64::MAX,
            published_values: u64::MAX,
            published_opsets: u64::MAX,
            undo_records: u64::MAX,
            // Never serialized: a recording run is unsupervised and unseeded,
            // so the round trip only holds with these counters at zero.
            demotions: 0,
            seeded_blocks: 0,
        },
        exit_code: i64::MIN,
        halted: false,
        stdout: vec![],
    };
    assert_eq!(TraceFooter::decode(&f.encode()).expect("decodes"), f);
}
