//! Hostile-input safety: a trace reader fed truncated, bit-flipped, or
//! mislabeled bytes must return a typed [`TraceError`] — never panic, never
//! loop, never hand back silently-wrong records.

use lis_trace::{RecordOptions, Trace, TraceError, TraceInfo};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One valid recorded trace (alpha sieve, small chunks), shared by every case.
fn valid_trace() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let spec = lis_workloads::spec_of("alpha");
        let image = lis_workloads::kernel("alpha", "sieve")
            .expect("sieve exists")
            .assemble()
            .expect("kernel assembles");
        let mut bytes = Vec::new();
        let opts =
            RecordOptions { kernel: "sieve".to_string(), chunk_target: 2048, ..Default::default() };
        lis_trace::record(spec, &image, &mut bytes, &opts).expect("recording succeeds");
        bytes
    })
}

#[test]
fn empty_and_tiny_inputs_are_typed_errors() {
    assert!(matches!(Trace::read_from(&b""[..]), Err(TraceError::BadMagic)));
    assert!(matches!(Trace::read_from(&b"LIS"[..]), Err(TraceError::BadMagic)));
    // Correct magic, then nothing.
    assert!(matches!(Trace::read_from(&b"LISTRACE"[..]), Err(TraceError::Truncated)));
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = valid_trace().to_vec();
    bytes[0] ^= 0xFF;
    assert!(matches!(Trace::read_from(bytes.as_slice()), Err(TraceError::BadMagic)));
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = valid_trace().to_vec();
    bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
    assert!(matches!(Trace::read_from(bytes.as_slice()), Err(TraceError::UnsupportedVersion(999))));
    assert!(matches!(TraceInfo::scan(bytes.as_slice()), Err(TraceError::UnsupportedVersion(999))));
}

#[test]
fn flipped_chunk_payload_byte_is_a_crc_error() {
    let bytes = valid_trace();
    // The header frame starts right after magic + version; its payload
    // length names where the first data frame (and its payload) begin.
    let hdr_len = u32::from_le_bytes(bytes[13..17].try_into().unwrap()) as usize;
    let data_frame = 12 + 13 + hdr_len;
    let data_payload = data_frame + 13;
    let mut corrupt = bytes.to_vec();
    corrupt[data_payload] ^= 0x01;
    match Trace::read_from(corrupt.as_slice()) {
        Err(TraceError::BadCrc { frame, .. }) => assert_eq!(frame, 1),
        other => panic!("expected BadCrc on frame 1, got {other:?}"),
    }
}

#[test]
fn garbage_after_valid_header_is_rejected() {
    let bytes = valid_trace();
    let hdr_len = u32::from_le_bytes(bytes[13..17].try_into().unwrap()) as usize;
    let mut corrupt = bytes[..12 + 13 + hdr_len].to_vec();
    corrupt.extend_from_slice(&[0xAB; 40]);
    assert!(Trace::read_from(corrupt.as_slice()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every strict prefix of a valid trace is an error (the footer is
    /// missing at minimum) and must never panic.
    #[test]
    fn any_truncation_is_a_typed_error(cut in 0usize..1_000_000) {
        let bytes = valid_trace();
        let cut = cut % bytes.len();
        prop_assert!(Trace::read_from(&bytes[..cut]).is_err());
        prop_assert!(TraceInfo::scan(&bytes[..cut]).is_err());
    }

    /// Flipping any byte must never panic. Almost every flip is detected
    /// (magic, version, CRC-protected payloads, self-checking frame
    /// headers); the only bytes without a check are dead space whose flip
    /// cannot change what the reader returns — so on `Ok` the decoded
    /// trace must equal the pristine one.
    #[test]
    fn any_single_byte_flip_is_detected_or_inert(
        pos in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let bytes = valid_trace();
        let pos = pos % bytes.len();
        let mut corrupt = bytes.to_vec();
        corrupt[pos] ^= mask;
        match Trace::read_from(corrupt.as_slice()) {
            Err(_) => {}
            Ok(trace) => {
                let pristine = Trace::read_from(bytes).expect("pristine reads");
                prop_assert_eq!(
                    trace.records(None).expect("decodes"),
                    pristine.records(None).expect("decodes"),
                    "an undetected flip must not change the records"
                );
                prop_assert_eq!(trace.footer.stats.insts, pristine.footer.stats.insts);
                prop_assert_eq!(trace.footer.stdout, pristine.footer.stdout);
            }
        }
        // The info scan takes the same path; it must not panic either.
        let _ = TraceInfo::scan(corrupt.as_slice());
    }

    /// Random garbage with a valid preamble grafted on: typed error, no
    /// panic, regardless of content.
    #[test]
    fn random_bytes_never_panic(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut bytes = b"LISTRACE".to_vec();
        bytes.extend_from_slice(&lis_trace::VERSION.to_le_bytes());
        bytes.extend_from_slice(&body);
        prop_assert!(Trace::read_from(bytes.as_slice()).is_err());
    }
}
