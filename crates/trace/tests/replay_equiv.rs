//! The golden replay property: a trace recorded once at maximum detail and
//! replayed through the out-of-order consumer produces **the same timing
//! report** as the execute-driven functional-first simulation — for every
//! kernel on every ISA. Sharded replay preserves the exact instruction
//! counts and whole-run facts, and is deterministic.

use lis_timing::{run_functional_first_ooo, CoreConfig, OooConfig, TimingConfig, TimingReport};
use lis_trace::{record, replay_ooo, RecordOptions, ReplayConfig, Trace};
use lis_workloads::{spec_of, suite_of, ISAS};
use proptest::prelude::*;

/// Records a kernel at maximum detail with small chunks (so sharding has
/// boundaries to split at) and loads the trace back.
fn trace_of(isa: &str, kernel: &str) -> Trace {
    let spec = spec_of(isa);
    let image = lis_workloads::kernel(isa, kernel)
        .expect("kernel exists")
        .assemble()
        .expect("kernel assembles");
    let mut bytes = Vec::new();
    let opts =
        RecordOptions { kernel: kernel.to_string(), chunk_target: 4096, ..Default::default() };
    record(spec, &image, &mut bytes, &opts).expect("recording succeeds");
    Trace::read_from(bytes.as_slice()).expect("trace reads back")
}

fn execute_driven_with(isa: &str, kernel: &str, timing: TimingConfig) -> TimingReport {
    let spec = spec_of(isa);
    let image = lis_workloads::kernel(isa, kernel)
        .expect("kernel exists")
        .assemble()
        .expect("kernel assembles");
    let core = CoreConfig { timing, ..CoreConfig::default() };
    run_functional_first_ooo(spec, &image, &core, &OooConfig::default()).expect("kernel halts")
}

fn execute_driven(isa: &str, kernel: &str) -> TimingReport {
    execute_driven_with(isa, kernel, TimingConfig::CLASSIC)
}

fn assert_reports_equal(live: &TimingReport, replayed: &TimingReport, label: &str) {
    assert_eq!(replayed.cycles, live.cycles, "{label}: cycles");
    assert_eq!(replayed.insts, live.insts, "{label}: insts");
    assert_eq!(replayed.interface_calls, live.interface_calls, "{label}: interface calls");
    assert_eq!(replayed.icache_misses, live.icache_misses, "{label}: icache misses");
    assert_eq!(replayed.dcache_misses, live.dcache_misses, "{label}: dcache misses");
    assert_eq!(replayed.mispredicts, live.mispredicts, "{label}: mispredicts");
    assert_eq!(replayed.fallback_blocks, live.fallback_blocks, "{label}: fallback blocks");
    assert_eq!(replayed.exit_code, live.exit_code, "{label}: exit code");
    assert_eq!(replayed.stdout, live.stdout, "{label}: stdout");
}

#[test]
fn single_shard_replay_is_bit_identical_to_execute_driven() {
    for isa in ISAS {
        for w in suite_of(isa) {
            let label = format!("{isa}/{}", w.name);
            let live = execute_driven(isa, w.name);
            let trace = trace_of(isa, w.name);
            let replayed = replay_ooo(spec_of(isa), &trace, &ReplayConfig::default())
                .expect("replay succeeds");
            assert_reports_equal(&live, &replayed, &label);
        }
    }
}

#[test]
fn sharded_replay_preserves_counts_and_is_deterministic() {
    for isa in ISAS {
        let label = format!("{isa}/sieve sharded");
        let live = execute_driven(isa, "sieve");
        let trace = trace_of(isa, "sieve");
        assert!(trace.chunks.len() >= 4, "{label}: enough chunks to shard");

        let cfg = ReplayConfig { shards: 4, ..Default::default() };
        let a = replay_ooo(spec_of(isa), &trace, &cfg).expect("replay succeeds");
        let b = replay_ooo(spec_of(isa), &trace, &cfg).expect("replay succeeds");

        // Exact: instruction counts and whole-run facts survive sharding.
        assert_eq!(a.insts, live.insts, "{label}: insts merge exactly");
        assert_eq!(a.interface_calls, live.interface_calls, "{label}: interface calls");
        assert_eq!(a.exit_code, live.exit_code, "{label}: exit code");
        assert_eq!(a.stdout, live.stdout, "{label}: stdout");

        // Deterministic: the same sharded replay twice is identical,
        // cycles included.
        assert_eq!(a.cycles, b.cycles, "{label}: deterministic cycles");
        assert_eq!(a.insts, b.insts, "{label}: deterministic insts");
        assert_eq!(a.icache_misses, b.icache_misses, "{label}: deterministic icache");
        assert_eq!(a.dcache_misses, b.dcache_misses, "{label}: deterministic dcache");
        assert_eq!(a.mispredicts, b.mispredicts, "{label}: deterministic mispredicts");

        // Approximate: warmed-up shards land near the sequential cycle
        // count (warm-up bounds the cold-start error, it cannot erase it).
        let lo = live.cycles - live.cycles / 5;
        let hi = live.cycles + live.cycles / 5;
        assert!(
            (lo..=hi).contains(&a.cycles),
            "{label}: sharded cycles {} not within 20% of sequential {}",
            a.cycles,
            live.cycles
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The golden property holds on every *component preset*, not just the
    /// default: for any (preset, ISA, kernel), the execute-driven
    /// functional-first ooo run and a single-shard replay of one max-detail
    /// recording produce bit-identical reports. The recording itself is
    /// preset-independent — only the replay-side core config varies — which
    /// is exactly the single-specification claim for the timing seams.
    #[test]
    fn replay_is_bit_identical_under_every_preset(
        preset_idx in 0usize..TimingConfig::PRESETS.len(),
        isa_idx in 0usize..ISAS.len(),
        kernel_seed in 0u64..1_000_000,
    ) {
        let preset = TimingConfig::PRESETS[preset_idx];
        let isa = ISAS[isa_idx];
        let suite = suite_of(isa);
        let kernel = suite[(kernel_seed % suite.len() as u64) as usize].name;
        let label = format!("{}/{isa}/{kernel}", preset.name);

        let live = execute_driven_with(isa, kernel, preset);
        let trace = trace_of(isa, kernel);
        let cfg = ReplayConfig {
            core: CoreConfig { timing: preset, ..CoreConfig::default() },
            ..ReplayConfig::default()
        };
        let replayed = replay_ooo(spec_of(isa), &trace, &cfg).expect("replay succeeds");
        assert_reports_equal(&live, &replayed, &label);
    }
}

#[test]
fn oversharding_degrades_gracefully() {
    // More shards than chunks: clamps, still exact on instruction counts.
    let live = execute_driven("alpha", "strrev");
    let trace = trace_of("alpha", "strrev");
    let cfg = ReplayConfig { shards: 64, ..Default::default() };
    let r = replay_ooo(spec_of("alpha"), &trace, &cfg).expect("replay succeeds");
    assert_eq!(r.insts, live.insts);
    assert_eq!(r.stdout, live.stdout);
}

#[test]
fn fallback_blocks_is_a_run_granularity_fact_in_both_json_paths() {
    // `fallback_blocks` counts engine-side cache degradation the record
    // stream never shows, so both `--stats-json` paths must report the
    // engine's run-granularity count: live frontends copy it from
    // `SimStats`, replay copies it from the trace footer. Golden-JSON check
    // that the replayed report carries the recorded count verbatim.
    let mut trace = trace_of("alpha", "gcd");
    trace.footer.stats.fallback_blocks = 7;
    let r = replay_ooo(spec_of("alpha"), &trace, &ReplayConfig::default()).expect("replays");
    assert_eq!(r.fallback_blocks, 7, "footer count propagates unchanged");
    assert!(
        r.to_json().contains("\"fallback_blocks\":7"),
        "stats-json exposes the run-granularity count"
    );

    // Sharding must not turn the whole-run fact into a per-shard sum.
    let cfg = ReplayConfig { shards: 4, ..Default::default() };
    let sharded = replay_ooo(spec_of("alpha"), &trace, &cfg).expect("replays sharded");
    assert_eq!(sharded.fallback_blocks, 7, "sharded replay does not multiply the count");
}

#[test]
fn replay_of_a_faulting_program_reports_the_measured_prefix() {
    // A program that faults mid-run still records a complete trace; replay
    // consumes it and reports the work up to the fault.
    let spec = spec_of("alpha");
    let src = "_start:\n    .word 0\n";
    let image = lis_workloads::assemble_source("alpha", src).expect("assembles");
    let mut bytes = Vec::new();
    let opts = RecordOptions { kernel: "fault".to_string(), ..Default::default() };
    let summary = record(spec, &image, &mut bytes, &opts).expect("fault is a complete trace");
    assert!(!summary.halted);
    assert!(summary.fault.is_some());

    let trace = Trace::read_from(bytes.as_slice()).expect("trace reads back");
    let r = replay_ooo(spec, &trace, &ReplayConfig::default()).expect("replay succeeds");
    assert!(r.insts <= trace.insts(), "faulting record ends the stream");
}
