//! # lis-trace — record once, replay anywhere
//!
//! The paper's single-specification principle, lifted to data: the
//! instruction semantics are specified once at maximum detail and every
//! lower-detail interface is *derived* — so the dynamic instruction stream
//! is **recorded** once at maximum detail and every lower-detail trace is
//! derived by [projection](TraceRecord::project), instead of re-running the
//! functional simulator per interface.
//!
//! * **Format** — a versioned streaming binary container: magic + version,
//!   a self-describing header ([`TraceMeta`]: ISA, buildset, visibility,
//!   kernel, seed, field dictionary), ~64 KiB data chunks with per-chunk
//!   CRC32 and per-chunk delta-encoding state, and a footer
//!   ([`TraceFooter`]) carrying the whole-run ground truth (final
//!   [`SimStats`](lis_runtime::SimStats), exit code, stdout).
//! * **Record** — [`record`] hooks the engine's retirement path
//!   ([`Simulator::run_with_sink`](lis_runtime::Simulator::run_with_sink))
//!   and streams every published record through [`TraceWriter`].
//! * **Read** — [`TraceReader`] streams chunk-at-a-time with integrity
//!   verification; [`Trace`] loads a file for random chunk access;
//!   every decoder is hostile-input-safe (typed [`TraceError`]s, never a
//!   panic).
//! * **Replay** — [`replay_ooo`] drives the same [`OooCore`] consumer the
//!   execute-driven frontend uses, so single-shard replay is bit-identical
//!   to live simulation; sharded replay splits chunks across threads with
//!   overlap warm-up and merges the reports.
//!
//! [`OooCore`]: lis_timing::OooCore

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod format;
mod reader;
mod record;
mod recorder;
mod replay;
mod wire;
mod writer;

/// Current trace format version. Version 2 extended the footer with the
/// publication-work counters (`published_values`, `published_opsets`,
/// `undo_records`) that the sweep's detail-cost metric is built from.
pub const VERSION: u32 = 2;

pub use error::{RecordError, TraceError};
pub use format::{TraceFooter, TraceMeta, CHUNK_TARGET, MAGIC, MAX_PAYLOAD};
pub use reader::{decode_chunk, Trace, TraceInfo, TraceReader};
pub use record::TraceRecord;
pub use recorder::{meta_for, record, RecordOptions, RecordSummary};
pub use replay::{replay_ooo, ReplayConfig};
pub use wire::{crc32, Cursor};
pub use writer::TraceWriter;
