//! The owned trace record and its wire codec.
//!
//! [`TraceRecord`] is the serializable twin of [`DynInst`]: the same
//! header/fault/fields/operands payload, but with public storage and
//! structural equality so traces can be compared, projected, and
//! re-encoded. Conversion in both directions is lossless for everything an
//! interface publishes.
//!
//! ## Wire encoding (one record)
//!
//! ```text
//! flags:u8  [pc Δ]  [phys Δ]  bits  [next Δ]  mask  values…  [ops]  [fault]
//! ```
//!
//! * `flags` — bit 0 fault present, bit 1 operands present, bit 2 PC equals
//!   the previous record's `next_pc` (the common case: no encoded PC at
//!   all), bit 3 `next_pc == pc + 4` (sequential flow), bit 4
//!   `phys_pc == pc` (identity translation).
//! * PC deltas are zigzag varints against the previous record's `next_pc`;
//!   the delta state resets at every chunk boundary so chunks decode
//!   independently — that independence is what makes sharded replay
//!   possible.
//! * `mask` is the published [`FieldSet`] as a varint; `values` are the
//!   published field values in ascending field-index order.
//! * `ops` (when present) packs source/dest counts into one byte, then each
//!   operand as a class byte and an index varint.
//! * `fault` (when present) is a tag byte plus that variant's payload.

use crate::error::TraceError;
use crate::wire::{put_iv, put_uv, Cursor};
use lis_core::{
    DynInst, Fault, FieldId, FieldSet, Frame, InstHeader, Operands, RegClass, Visibility, MAX_DEST,
    MAX_FIELDS, MAX_SRC,
};

const FLAG_FAULT: u8 = 1 << 0;
const FLAG_OPS: u8 = 1 << 1;
const FLAG_PC_SEQ: u8 = 1 << 2;
const FLAG_NEXT_SEQ: u8 = 1 << 3;
const FLAG_PHYS_EQ: u8 = 1 << 4;
const FLAG_KNOWN: u8 = FLAG_FAULT | FLAG_OPS | FLAG_PC_SEQ | FLAG_NEXT_SEQ | FLAG_PHYS_EQ;

/// One recorded dynamic-instruction record, owned and comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The always-published header.
    pub header: InstHeader,
    /// Fault raised by this instruction, if any.
    pub fault: Option<Fault>,
    /// Published field values; slots outside `fields_valid` are zero.
    pub fields: [u64; MAX_FIELDS],
    /// Which fields were published.
    pub fields_valid: FieldSet,
    /// Published operand identifiers, when the interface exposed them.
    pub ops: Option<Operands>,
}

impl Default for TraceRecord {
    fn default() -> Self {
        TraceRecord {
            header: InstHeader::default(),
            fault: None,
            fields: [0; MAX_FIELDS],
            fields_valid: FieldSet::EMPTY,
            ops: None,
        }
    }
}

impl TraceRecord {
    /// Captures a published [`DynInst`] losslessly.
    pub fn from_dyninst(di: &DynInst) -> TraceRecord {
        let mut fields = [0u64; MAX_FIELDS];
        for id in di.fields_valid().iter() {
            fields[id.index()] = di.field(id).expect("valid field");
        }
        TraceRecord {
            header: di.header,
            fault: di.fault,
            fields,
            fields_valid: di.fields_valid(),
            ops: di.operands().copied(),
        }
    }

    /// Rebuilds the [`DynInst`] a consumer would have received.
    pub fn to_dyninst(&self) -> DynInst {
        let mut frame = Frame::new();
        for id in self.fields_valid.iter() {
            frame.set(id, self.fields[id.index()]);
        }
        let ops = self.ops.unwrap_or_default();
        let mut di = DynInst::new();
        di.header = self.header;
        di.fault = self.fault;
        di.publish(&frame, self.fields_valid, &ops, self.ops.is_some());
        di
    }

    /// Derives the record a lower-detail interface would have published:
    /// fields outside `vis.fields` are dropped (and their slots zeroed),
    /// operand identifiers are dropped unless `vis.operand_ids`. The header
    /// and fault always survive — they are the paper's `Min` level.
    ///
    /// Projecting with the visibility the trace was recorded at is the
    /// identity.
    pub fn project(&self, vis: Visibility) -> TraceRecord {
        let mask = FieldSet(self.fields_valid.0 & vis.fields.0);
        let mut fields = [0u64; MAX_FIELDS];
        for id in mask.iter() {
            fields[id.index()] = self.fields[id.index()];
        }
        TraceRecord {
            header: self.header,
            fault: self.fault,
            fields,
            fields_valid: mask,
            ops: if vis.operand_ids { self.ops } else { None },
        }
    }

    /// Appends this record's wire encoding. `prev_next_pc` is the previous
    /// record's `next_pc` in the same chunk (0 at a chunk start).
    pub fn encode(&self, out: &mut Vec<u8>, prev_next_pc: u64) {
        let h = &self.header;
        let mut flags = 0u8;
        if self.fault.is_some() {
            flags |= FLAG_FAULT;
        }
        if self.ops.is_some() {
            flags |= FLAG_OPS;
        }
        if h.pc == prev_next_pc {
            flags |= FLAG_PC_SEQ;
        }
        if h.next_pc == h.pc.wrapping_add(4) {
            flags |= FLAG_NEXT_SEQ;
        }
        if h.phys_pc == h.pc {
            flags |= FLAG_PHYS_EQ;
        }
        out.push(flags);
        if flags & FLAG_PC_SEQ == 0 {
            put_iv(out, h.pc.wrapping_sub(prev_next_pc) as i64);
        }
        if flags & FLAG_PHYS_EQ == 0 {
            put_iv(out, h.phys_pc.wrapping_sub(h.pc) as i64);
        }
        put_uv(out, u64::from(h.instr_bits));
        if flags & FLAG_NEXT_SEQ == 0 {
            put_iv(out, h.next_pc.wrapping_sub(h.pc.wrapping_add(4)) as i64);
        }
        put_uv(out, self.fields_valid.0);
        for id in self.fields_valid.iter() {
            put_uv(out, self.fields[id.index()]);
        }
        if let Some(ops) = &self.ops {
            debug_assert!(ops.n_srcs() <= MAX_SRC && ops.n_dests() <= MAX_DEST);
            out.push((ops.n_srcs() as u8) | ((ops.n_dests() as u8) << 4));
            for r in ops.srcs().iter().chain(ops.dests()) {
                out.push(r.class);
                put_uv(out, u64::from(r.index));
            }
        }
        if let Some(fault) = self.fault {
            encode_fault(out, fault);
        }
    }

    /// Decodes one record, advancing `cur`. `prev_next_pc` mirrors
    /// [`TraceRecord::encode`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] or [`TraceError::Corrupt`] on any byte
    /// stream that could not have been produced by the encoder.
    pub fn decode(cur: &mut Cursor<'_>, prev_next_pc: u64) -> Result<TraceRecord, TraceError> {
        let flags = cur.u8()?;
        if flags & !FLAG_KNOWN != 0 {
            return Err(TraceError::Corrupt("unknown record flags"));
        }
        let pc = if flags & FLAG_PC_SEQ != 0 {
            prev_next_pc
        } else {
            prev_next_pc.wrapping_add(cur.iv()? as u64)
        };
        let phys_pc =
            if flags & FLAG_PHYS_EQ != 0 { pc } else { pc.wrapping_add(cur.iv()? as u64) };
        let bits = cur.uv()?;
        if bits > u64::from(u32::MAX) {
            return Err(TraceError::Corrupt("instruction bits exceed 32 bits"));
        }
        let next_pc = if flags & FLAG_NEXT_SEQ != 0 {
            pc.wrapping_add(4)
        } else {
            pc.wrapping_add(4).wrapping_add(cur.iv()? as u64)
        };
        let mask = cur.uv()?;
        if mask & !FieldSet::ALL.0 != 0 {
            return Err(TraceError::Corrupt("field mask has bits beyond MAX_FIELDS"));
        }
        let fields_valid = FieldSet(mask);
        let mut fields = [0u64; MAX_FIELDS];
        for id in fields_valid.iter() {
            fields[id.index()] = cur.uv()?;
        }
        let ops = if flags & FLAG_OPS != 0 {
            let counts = cur.u8()?;
            let (nsrc, ndest) = ((counts & 0x0f) as usize, (counts >> 4) as usize);
            if nsrc > MAX_SRC || ndest > MAX_DEST {
                return Err(TraceError::Corrupt("operand count out of range"));
            }
            let mut ops = Operands::new();
            for i in 0..nsrc + ndest {
                let class = cur.u8()?;
                let index = cur.uv()?;
                if index > u64::from(u16::MAX) {
                    return Err(TraceError::Corrupt("operand index exceeds u16"));
                }
                if i < nsrc {
                    ops.push_src(RegClass(class), index as u16);
                } else {
                    ops.push_dest(RegClass(class), index as u16);
                }
            }
            Some(ops)
        } else {
            None
        };
        let fault = if flags & FLAG_FAULT != 0 { Some(decode_fault(cur)?) } else { None };
        Ok(TraceRecord {
            header: InstHeader { pc, phys_pc, instr_bits: bits as u32, next_pc },
            fault,
            fields,
            fields_valid,
            ops,
        })
    }

    /// Reads a field value, mirroring [`DynInst::field`].
    pub fn field(&self, id: FieldId) -> Option<u64> {
        self.fields_valid.contains(id).then(|| self.fields[id.index()])
    }
}

fn encode_fault(out: &mut Vec<u8>, fault: Fault) {
    match fault {
        Fault::IllegalInstruction { pc, bits } => {
            out.push(0);
            put_uv(out, pc);
            put_uv(out, u64::from(bits));
        }
        Fault::InstrAccess { addr } => {
            out.push(1);
            put_uv(out, addr);
        }
        Fault::DataAccess { addr } => {
            out.push(2);
            put_uv(out, addr);
        }
        Fault::Unaligned { addr } => {
            out.push(3);
            put_uv(out, addr);
        }
        Fault::ArithOverflow => out.push(4),
        Fault::DivideByZero => out.push(5),
        Fault::SyscallError { num } => {
            out.push(6);
            put_uv(out, num);
        }
        Fault::Breakpoint { pc } => {
            out.push(7);
            put_uv(out, pc);
        }
    }
}

fn decode_fault(cur: &mut Cursor<'_>) -> Result<Fault, TraceError> {
    Ok(match cur.u8()? {
        0 => {
            let pc = cur.uv()?;
            let bits = cur.uv()?;
            if bits > u64::from(u32::MAX) {
                return Err(TraceError::Corrupt("fault bits exceed 32 bits"));
            }
            Fault::IllegalInstruction { pc, bits: bits as u32 }
        }
        1 => Fault::InstrAccess { addr: cur.uv()? },
        2 => Fault::DataAccess { addr: cur.uv()? },
        3 => Fault::Unaligned { addr: cur.uv()? },
        4 => Fault::ArithOverflow,
        5 => Fault::DivideByZero,
        6 => Fault::SyscallError { num: cur.uv()? },
        7 => Fault::Breakpoint { pc: cur.uv()? },
        _ => return Err(TraceError::Corrupt("unknown fault tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::{F_EFF_ADDR, F_OPCODE};

    fn sample() -> TraceRecord {
        let mut r = TraceRecord {
            header: InstHeader { pc: 0x1000, phys_pc: 0x1000, instr_bits: 0xDEAD, next_pc: 0x1004 },
            ..Default::default()
        };
        r.fields_valid = FieldSet::of(&[F_OPCODE, F_EFF_ADDR]);
        r.fields[F_OPCODE.index()] = 17;
        r.fields[F_EFF_ADDR.index()] = 0x8000_0000;
        let mut ops = Operands::new();
        ops.push_src(RegClass(0), 2);
        ops.push_dest(RegClass(0), 5);
        r.ops = Some(ops);
        r
    }

    #[test]
    fn encode_decode_round_trip() {
        for (rec, prev) in [
            (sample(), 0u64),
            (sample(), 0x1000), // pc_seq path
            (
                TraceRecord {
                    header: InstHeader {
                        pc: 0x2000,
                        phys_pc: 0x9_2000,
                        instr_bits: 1,
                        next_pc: 0x1f00,
                    },
                    fault: Some(Fault::DataAccess { addr: 0xbad }),
                    ..Default::default()
                },
                0,
            ),
        ] {
            let mut buf = Vec::new();
            rec.encode(&mut buf, prev);
            let mut cur = Cursor::new(&buf);
            let back = TraceRecord::decode(&mut cur, prev).unwrap();
            assert!(cur.at_end());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn sequential_record_is_tiny() {
        // pc chains and next is sequential: flags + bits + mask = 3-ish bytes.
        let rec = TraceRecord {
            header: InstHeader { pc: 0x1004, phys_pc: 0x1004, instr_bits: 7, next_pc: 0x1008 },
            ..Default::default()
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf, 0x1004);
        assert!(buf.len() <= 3, "got {} bytes", buf.len());
    }

    #[test]
    fn dyninst_round_trip() {
        let rec = sample();
        let di = rec.to_dyninst();
        assert_eq!(di.field(F_OPCODE), Some(17));
        assert_eq!(di.operands().unwrap().n_srcs(), 1);
        assert_eq!(TraceRecord::from_dyninst(&di), rec);
    }

    #[test]
    fn projection_masks_and_full_is_identity() {
        let rec = sample();
        assert_eq!(rec.project(Visibility::ALL), rec);
        let min = rec.project(Visibility::MIN);
        assert_eq!(min.header, rec.header);
        assert!(min.fields_valid.is_empty());
        assert!(min.ops.is_none());
        assert_eq!(min.fields, [0u64; MAX_FIELDS], "hidden slots must zero");
        let dec = rec.project(Visibility::DECODE);
        assert_eq!(dec.field(F_OPCODE), Some(17));
        assert!(dec.ops.is_some());
    }

    #[test]
    fn all_fault_variants_round_trip() {
        for fault in [
            Fault::IllegalInstruction { pc: 8, bits: 9 },
            Fault::InstrAccess { addr: 1 },
            Fault::DataAccess { addr: 2 },
            Fault::Unaligned { addr: 3 },
            Fault::ArithOverflow,
            Fault::DivideByZero,
            Fault::SyscallError { num: 4 },
            Fault::Breakpoint { pc: 5 },
        ] {
            let rec = TraceRecord { fault: Some(fault), ..Default::default() };
            let mut buf = Vec::new();
            rec.encode(&mut buf, 0);
            let back = TraceRecord::decode(&mut Cursor::new(&buf), 0).unwrap();
            assert_eq!(back.fault, Some(fault));
        }
    }

    #[test]
    fn hostile_bytes_do_not_panic() {
        // Unknown flags, bad fault tag, oversized counts: typed errors only.
        assert!(TraceRecord::decode(&mut Cursor::new(&[0xE0]), 0).is_err());
        assert!(TraceRecord::decode(&mut Cursor::new(&[]), 0).is_err());
        let mut buf = Vec::new();
        TraceRecord { fault: Some(Fault::ArithOverflow), ..Default::default() }.encode(&mut buf, 0);
        *buf.last_mut().unwrap() = 99; // fault tag
        assert!(matches!(
            TraceRecord::decode(&mut Cursor::new(&buf), 0),
            Err(TraceError::Corrupt(_))
        ));
    }
}
