//! Trace-driven replay of the out-of-order timing consumer.
//!
//! Replay feeds recorded records to [`OooCore`] — the same consumer the
//! execute-driven frontend uses — so a single-shard replay of a trace is
//! bit-identical to running the functional simulator live. Sharded replay
//! splits the trace at chunk boundaries across threads: each worker warms
//! its core on the chunks preceding its shard (overlap warm-up), marks the
//! measurement start, feeds its own chunks, and the per-shard reports are
//! summed. Instruction counts merge exactly; cycle counts are near — not
//! bit — identical to single-shard, because a warmed core is an
//! approximation of the full prefix state.

use crate::error::TraceError;
use crate::reader::{decode_chunk, Trace};
use crate::record::TraceRecord;
use lis_core::{IsaSpec, Visibility};
use lis_timing::{CoreConfig, OooConfig, OooCore, TimingReport};

/// Options for one replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Worker threads. 1 = exact sequential replay.
    pub shards: usize,
    /// Chunks of overlap warm-up fed to each shard before measurement.
    pub warmup_chunks: usize,
    /// Core parameters (must match the execute-driven run being compared).
    pub core: CoreConfig,
    /// Out-of-order parameters.
    pub ooo: OooConfig,
    /// Visibility projection applied to records before feeding the core.
    /// Default [`Visibility::DECODE`] — what the execute-driven
    /// functional-first consumer sees.
    pub projection: Visibility,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            shards: 1,
            warmup_chunks: 4,
            core: CoreConfig::default(),
            ooo: OooConfig::default(),
            projection: Visibility::DECODE,
        }
    }
}

/// Feeds the chunk range `[from, to)` of `trace` into a fresh core;
/// measurement starts after the `warmup` chunks preceding `from`.
fn run_shard(
    spec: &'static IsaSpec,
    trace: &Trace,
    cfg: &ReplayConfig,
    from: usize,
    to: usize,
) -> Result<TimingReport, TraceError> {
    let mut core = OooCore::new(spec, &cfg.core, &cfg.ooo);
    let warm_from = from.saturating_sub(cfg.warmup_chunks);
    let mut measuring = false;
    let mut buf: Vec<TraceRecord> = Vec::new();
    for (i, (payload, ninsts)) in trace.chunks[warm_from..to].iter().enumerate() {
        if warm_from + i == from {
            core.mark_measurement_start();
            measuring = true;
        }
        decode_chunk(payload, *ninsts, &mut buf)?;
        for rec in buf.drain(..) {
            let di = rec.project(cfg.projection).to_dyninst();
            // A recorded fault ends the stream; the shard's report covers
            // everything measured up to it, same as the execute-driven run.
            if core.feed(&di).is_err() {
                if !measuring {
                    core.mark_measurement_start();
                }
                return Ok(core.report("trace-ooo"));
            }
        }
    }
    if !measuring {
        // Empty measured range (can only happen with more shards than
        // chunks): report zero work rather than the warm-up.
        core.mark_measurement_start();
    }
    Ok(core.report("trace-ooo"))
}

/// Replays `trace` through the out-of-order consumer.
///
/// With `cfg.shards == 1` the resulting [`TimingReport`] is bit-identical
/// to [`lis_timing::run_functional_first_ooo`] on the same program and
/// configuration (the golden-equality property). With more shards, the
/// trace's chunks are partitioned contiguously across `std::thread` workers
/// and the per-shard reports are merged.
///
/// # Errors
///
/// [`TraceError::Corrupt`] if a chunk fails to decode.
pub fn replay_ooo(
    spec: &'static IsaSpec,
    trace: &Trace,
    cfg: &ReplayConfig,
) -> Result<TimingReport, TraceError> {
    let shards = cfg.shards.max(1).min(trace.chunks.len().max(1));
    let mut merged = if shards <= 1 {
        run_shard(spec, trace, cfg, 0, trace.chunks.len())?
    } else {
        // Contiguous chunk ranges, remainder spread over the first shards.
        let n = trace.chunks.len();
        let base = n / shards;
        let extra = n % shards;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            ranges.push((start, start + len));
            start += len;
        }
        let results: Vec<Result<TimingReport, TraceError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(from, to)| scope.spawn(move || run_shard(spec, trace, cfg, from, to)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
        });
        let mut merged = TimingReport { organization: "trace-ooo", ..Default::default() };
        for r in results {
            merged.merge(&r?);
        }
        merged
    };
    // Whole-run facts come from the footer — the recorded ground truth.
    // `fallback_blocks` in particular must come from here: mid-block cache
    // degradation is an engine-side event the record stream itself never
    // shows, so replay copies the engine's run-granularity count exactly as
    // the live frontend does.
    merged.interface_calls = trace.footer.stats.calls;
    merged.fallback_blocks = trace.footer.stats.fallback_blocks;
    merged.exit_code = trace.footer.exit_code;
    merged.stdout = trace.footer.stdout.clone();
    Ok(merged)
}
