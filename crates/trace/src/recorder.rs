//! Recording: run a program once, capture the published record stream.

use crate::error::{RecordError, TraceError};
use crate::format::{TraceFooter, TraceMeta, CHUNK_TARGET};
use crate::writer::TraceWriter;
use lis_core::{BuildsetDef, IsaSpec, BLOCK_ALL};
use lis_mem::Image;
use lis_runtime::{SimStop, Simulator};
use std::io::Write;

/// Options for one recording run.
#[derive(Debug, Clone)]
pub struct RecordOptions {
    /// Interface to record. Default [`BLOCK_ALL`] — maximum informational
    /// detail at block semantic, so every lower-detail trace can later be
    /// derived by projection (record once, replay anywhere).
    pub buildset: BuildsetDef,
    /// Workload label written into the header.
    pub kernel: String,
    /// Generator seed written into the header (0 for fixed kernels).
    pub seed: u64,
    /// Instruction budget.
    pub max_insts: u64,
    /// Chunk payload target in bytes.
    pub chunk_target: usize,
}

impl Default for RecordOptions {
    fn default() -> Self {
        RecordOptions {
            buildset: BLOCK_ALL,
            kernel: String::new(),
            seed: 0,
            max_insts: 200_000_000,
            chunk_target: CHUNK_TARGET,
        }
    }
}

/// What a recording run produced.
#[derive(Debug, Clone)]
pub struct RecordSummary {
    /// Records written.
    pub insts: u64,
    /// Whether the program halted (false: the trace ends at a fault).
    pub halted: bool,
    /// Program exit code.
    pub exit_code: i64,
    /// The fault that ended the run, when not halted.
    pub fault: Option<lis_core::Fault>,
}

/// Builds the self-describing header for a `(spec, opts)` pair.
pub fn meta_for(spec: &IsaSpec, opts: &RecordOptions) -> TraceMeta {
    TraceMeta {
        isa: spec.name.to_string(),
        buildset: opts.buildset.name.to_string(),
        visibility: opts.buildset.visibility,
        semantic: opts.buildset.semantic,
        speculation: opts.buildset.speculation,
        kernel: opts.kernel.clone(),
        seed: opts.seed,
        fields: spec.all_fields().map(|d| (d.id.0, d.name.to_string())).collect(),
    }
}

/// Runs `image` on a fresh simulator and streams every published record
/// into `w` as a complete trace (header, chunks, footer).
///
/// A program that ends in an architectural fault still records a complete
/// trace — the faulting record is the last one and the footer says
/// `halted: false` — because a fault is information, not an error.
///
/// # Errors
///
/// [`RecordError::Stop`] when the run ends by budget or deadline instead of
/// halt/fault (the trace file is left incomplete), plus construction, load,
/// and I/O failures.
pub fn record<W: Write>(
    spec: &'static IsaSpec,
    image: &Image,
    w: W,
    opts: &RecordOptions,
) -> Result<RecordSummary, RecordError> {
    let mut sim = Simulator::new(spec, opts.buildset).map_err(RecordError::Build)?;
    sim.load_program(image).map_err(RecordError::Load)?;

    let meta = meta_for(spec, opts);
    let mut writer = TraceWriter::with_chunk_target(w, &meta, opts.chunk_target)?;

    // The sink cannot return an error, so the first write failure is parked
    // here and re-raised after the run ends.
    let mut write_err: Option<TraceError> = None;
    let result = sim.run_with_sink(opts.max_insts, |di| {
        if write_err.is_none() {
            if let Err(e) = writer.push_dyninst(di) {
                write_err = Some(e);
            }
        }
    });
    if let Some(e) = write_err {
        return Err(e.into());
    }
    let fault = match result {
        Ok(_) => None,
        Err(SimStop::Fault(f)) => Some(f),
        Err(stop) => return Err(RecordError::Stop(stop)),
    };

    let footer = TraceFooter {
        insts: writer.len(),
        stats: sim.stats,
        exit_code: sim.state.exit_code,
        halted: sim.state.halted,
        stdout: sim.stdout().to_vec(),
    };
    let summary = RecordSummary {
        insts: footer.insts,
        halted: footer.halted,
        exit_code: footer.exit_code,
        fault,
    };
    writer.finish(&footer)?;
    Ok(summary)
}
