//! Streaming and in-memory trace readers.

use crate::error::TraceError;
use crate::format::{
    read_frame, TraceFooter, TraceMeta, KIND_DATA, KIND_FOOTER, KIND_HEADER, MAGIC,
};
use crate::record::TraceRecord;
use crate::wire::Cursor;
use lis_core::Visibility;
use std::io::Read;

/// Decodes the records of one chunk payload.
///
/// # Errors
///
/// [`TraceError::Corrupt`] when the payload decodes to a different number of
/// records than the frame declared, or on any malformed record.
pub fn decode_chunk(
    payload: &[u8],
    ninsts: u32,
    out: &mut Vec<TraceRecord>,
) -> Result<(), TraceError> {
    let mut cur = Cursor::new(payload);
    let mut prev_next_pc = 0u64;
    for _ in 0..ninsts {
        let rec = TraceRecord::decode(&mut cur, prev_next_pc)?;
        prev_next_pc = rec.header.next_pc;
        out.push(rec);
    }
    if !cur.at_end() {
        return Err(TraceError::Corrupt("chunk has trailing bytes after last record"));
    }
    Ok(())
}

/// A chunk-at-a-time streaming reader.
///
/// Construction consumes and validates the magic, version, and header;
/// [`TraceReader::next_chunk`] then yields one chunk of records at a time,
/// verifying each frame's CRC, until the footer is reached.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    meta: TraceMeta,
    footer: Option<TraceFooter>,
    frames_read: usize,
    records_read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`], or any
    /// header decode failure.
    pub fn open(mut r: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(|_| TraceError::BadMagic)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver).map_err(|_| TraceError::Truncated)?;
        let version = u32::from_le_bytes(ver);
        if version != crate::VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let frame = read_frame(&mut r, 0)?.ok_or(TraceError::Truncated)?;
        if frame.kind != KIND_HEADER {
            return Err(TraceError::Corrupt("first frame is not a header"));
        }
        let meta = TraceMeta::decode(&frame.payload)?;
        Ok(TraceReader { r, meta, footer: None, frames_read: 1, records_read: 0 })
    }

    /// The trace header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The footer — available once [`TraceReader::next_chunk`] has returned
    /// `Ok(None)`.
    pub fn footer(&self) -> Option<&TraceFooter> {
        self.footer.as_ref()
    }

    /// Reads and decodes the next data chunk into `out` (which is cleared
    /// first). Returns the number of records, or `None` after the footer.
    ///
    /// # Errors
    ///
    /// Any integrity or decode failure; [`TraceError::Truncated`] when the
    /// stream ends before a footer frame.
    pub fn next_chunk(&mut self, out: &mut Vec<TraceRecord>) -> Result<Option<usize>, TraceError> {
        out.clear();
        if self.footer.is_some() {
            return Ok(None);
        }
        let Some(frame) = read_frame(&mut self.r, self.frames_read)? else {
            // EOF without a footer: the file was cut off at a frame boundary.
            return Err(TraceError::Truncated);
        };
        self.frames_read += 1;
        match frame.kind {
            KIND_DATA => {
                decode_chunk(&frame.payload, frame.ninsts, out)?;
                self.records_read += u64::from(frame.ninsts);
                Ok(Some(out.len()))
            }
            KIND_FOOTER => {
                let footer = TraceFooter::decode(&frame.payload)?;
                if footer.insts != self.records_read {
                    return Err(TraceError::Corrupt("footer record count disagrees with chunks"));
                }
                self.footer = Some(footer);
                Ok(None)
            }
            _ => Err(TraceError::Corrupt("unexpected extra header frame")),
        }
    }
}

/// A fully loaded trace: header, raw (CRC-verified) chunk payloads, footer.
///
/// Chunk payloads are kept encoded so sharded replay can hand disjoint
/// chunk ranges to worker threads, each decoding its own share — decoding
/// is the expensive part, and this is what parallelizes it.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The trace header.
    pub meta: TraceMeta,
    /// Raw data-chunk payloads with their record counts.
    pub chunks: Vec<(Vec<u8>, u32)>,
    /// The trace footer.
    pub footer: TraceFooter,
}

impl Trace {
    /// Reads a whole trace into memory, verifying every CRC.
    ///
    /// # Errors
    ///
    /// See [`TraceReader::open`] and [`TraceReader::next_chunk`].
    pub fn read_from(mut r: impl Read) -> Result<Trace, TraceError> {
        // Stream frames directly so payloads are moved, not re-decoded.
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(|_| TraceError::BadMagic)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver).map_err(|_| TraceError::Truncated)?;
        let version = u32::from_le_bytes(ver);
        if version != crate::VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let frame = read_frame(&mut r, 0)?.ok_or(TraceError::Truncated)?;
        if frame.kind != KIND_HEADER {
            return Err(TraceError::Corrupt("first frame is not a header"));
        }
        let meta = TraceMeta::decode(&frame.payload)?;
        let mut chunks = Vec::new();
        let mut total = 0u64;
        let mut index = 1usize;
        loop {
            let Some(frame) = read_frame(&mut r, index)? else {
                return Err(TraceError::Truncated);
            };
            index += 1;
            match frame.kind {
                KIND_DATA => {
                    total += u64::from(frame.ninsts);
                    chunks.push((frame.payload, frame.ninsts));
                }
                KIND_FOOTER => {
                    let footer = TraceFooter::decode(&frame.payload)?;
                    if footer.insts != total {
                        return Err(TraceError::Corrupt(
                            "footer record count disagrees with chunks",
                        ));
                    }
                    return Ok(Trace { meta, chunks, footer });
                }
                _ => return Err(TraceError::Corrupt("unexpected extra header frame")),
            }
        }
    }

    /// Total records in the trace.
    pub fn insts(&self) -> u64 {
        self.footer.insts
    }

    /// Decodes every record, optionally projecting to a lower visibility.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on a malformed chunk (possible only if the
    /// trace was built by hand — `read_from` already verified CRCs).
    pub fn records(&self, project: Option<Visibility>) -> Result<Vec<TraceRecord>, TraceError> {
        let mut out = Vec::with_capacity(self.footer.insts as usize);
        for (payload, ninsts) in &self.chunks {
            decode_chunk(payload, *ninsts, &mut out)?;
        }
        if let Some(vis) = project {
            for rec in &mut out {
                *rec = rec.project(vis);
            }
        }
        Ok(out)
    }
}

/// Summary facts for `lis trace info`.
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// The trace header.
    pub meta: TraceMeta,
    /// The trace footer.
    pub footer: TraceFooter,
    /// Number of data chunks.
    pub chunks: usize,
    /// Total encoded record bytes (sum of data payloads).
    pub data_bytes: u64,
}

impl TraceInfo {
    /// Streams a trace, verifying all CRCs and decoding every record, and
    /// returns the summary. This is the integrity check behind
    /// `lis trace info`.
    ///
    /// # Errors
    ///
    /// Any integrity or decode failure anywhere in the file.
    pub fn scan(r: impl Read) -> Result<TraceInfo, TraceError> {
        let trace = Trace::read_from(r)?;
        let data_bytes = trace.chunks.iter().map(|(p, _)| p.len() as u64).sum();
        // Decode everything: `info` certifies the trace is fully readable,
        // not just CRC-clean.
        trace.records(None)?;
        Ok(TraceInfo {
            chunks: trace.chunks.len(),
            data_bytes,
            meta: trace.meta,
            footer: trace.footer,
        })
    }
}

impl std::fmt::Display for TraceInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "isa {}  buildset {}  kernel {}  seed {}",
            self.meta.isa, self.meta.buildset, self.meta.kernel, self.meta.seed
        )?;
        writeln!(
            f,
            "records {}  chunks {}  halted {}  exit {}",
            self.footer.insts, self.chunks, self.footer.halted, self.footer.exit_code
        )?;
        write!(
            f,
            "stats: {} insts, {} calls, {} blocks, {} faults",
            self.footer.stats.insts,
            self.footer.stats.calls,
            self.footer.stats.blocks,
            self.footer.stats.faults
        )
    }
}
