//! Streaming trace writer.

use crate::error::TraceError;
use crate::format::{
    write_frame, TraceFooter, TraceMeta, CHUNK_TARGET, KIND_DATA, KIND_FOOTER, KIND_HEADER, MAGIC,
};
use crate::record::TraceRecord;
use lis_core::DynInst;
use std::io::Write;

/// Writes a trace incrementally: header first, then records (chunked
/// automatically), then the footer via [`TraceWriter::finish`].
///
/// The chunk flush rule — emit a data frame as soon as the accumulated
/// payload reaches the chunk target — depends only on the record stream, so
/// writing the same records always produces the same bytes.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    payload: Vec<u8>,
    ninsts_in_chunk: u32,
    /// Records written so far.
    total: u64,
    prev_next_pc: u64,
    chunk_target: usize,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace: writes the magic, version, and header frame.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on write failure.
    pub fn new(w: W, meta: &TraceMeta) -> Result<TraceWriter<W>, TraceError> {
        Self::with_chunk_target(w, meta, CHUNK_TARGET)
    }

    /// Like [`TraceWriter::new`] with an explicit chunk target (tests use
    /// tiny chunks to exercise boundary handling).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on write failure.
    pub fn with_chunk_target(
        mut w: W,
        meta: &TraceMeta,
        chunk_target: usize,
    ) -> Result<TraceWriter<W>, TraceError> {
        w.write_all(MAGIC)?;
        w.write_all(&crate::VERSION.to_le_bytes())?;
        write_frame(&mut w, KIND_HEADER, 0, &meta.encode())?;
        Ok(TraceWriter {
            w,
            payload: Vec::with_capacity(chunk_target + 256),
            ninsts_in_chunk: 0,
            total: 0,
            prev_next_pc: 0,
            chunk_target: chunk_target.max(1),
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when a full chunk fails to flush.
    pub fn push(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        rec.encode(&mut self.payload, self.prev_next_pc);
        self.prev_next_pc = rec.header.next_pc;
        self.ninsts_in_chunk += 1;
        self.total += 1;
        if self.payload.len() >= self.chunk_target {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends one published [`DynInst`].
    ///
    /// # Errors
    ///
    /// See [`TraceWriter::push`].
    pub fn push_dyninst(&mut self, di: &DynInst) -> Result<(), TraceError> {
        self.push(&TraceRecord::from_dyninst(di))
    }

    /// Records written so far.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no records have been written.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    fn flush_chunk(&mut self) -> Result<(), TraceError> {
        if self.ninsts_in_chunk == 0 {
            return Ok(());
        }
        write_frame(&mut self.w, KIND_DATA, self.ninsts_in_chunk, &self.payload)?;
        self.payload.clear();
        self.ninsts_in_chunk = 0;
        // Chunks decode independently: the delta state resets with them.
        self.prev_next_pc = 0;
        Ok(())
    }

    /// Flushes the final partial chunk, writes the footer frame, and returns
    /// the underlying writer.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on write failure.
    pub fn finish(mut self, footer: &TraceFooter) -> Result<W, TraceError> {
        self.flush_chunk()?;
        write_frame(&mut self.w, KIND_FOOTER, 0, &footer.encode())?;
        self.w.flush()?;
        Ok(self.w)
    }
}
