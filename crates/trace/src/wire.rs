//! Low-level wire primitives: LEB128 varints, zigzag deltas, and CRC32.
//!
//! Everything in the trace format reduces to these three encodings. The
//! decoders are hostile-input-safe: every read is bounds-checked against
//! the buffer and returns a typed [`TraceError`] instead of panicking.

use crate::error::TraceError;

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Appends `v` zigzag-mapped so small magnitudes of either sign stay short.
pub fn put_iv(out: &mut Vec<u8>, v: i64) {
    put_uv(out, zigzag(v));
}

/// Maps a signed value to an unsigned one with small absolute values first.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked cursor over one decoded payload.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed the whole buffer.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] at end of buffer.
    pub fn u8(&mut self) -> Result<u8, TraceError> {
        let b = *self.buf.get(self.pos).ok_or(TraceError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] at end of buffer; [`TraceError::Corrupt`]
    /// when the varint runs past 10 bytes or overflows 64 bits.
    pub fn uv(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return Err(TraceError::Corrupt("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::Corrupt("varint too long"));
            }
        }
    }

    /// Reads a zigzag varint.
    ///
    /// # Errors
    ///
    /// See [`Cursor::uv`].
    pub fn iv(&mut self) -> Result<i64, TraceError> {
        Ok(unzigzag(self.uv()?))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(TraceError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a length-prefixed UTF-8 string (length capped at 4 KiB — far
    /// above any legitimate name, far below an allocation attack).
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on an oversized length or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, TraceError> {
        let len = self.uv()?;
        if len > 4096 {
            return Err(TraceError::Corrupt("string length out of range"));
        }
        let raw = self.bytes(len as usize)?;
        String::from_utf8(raw.to_vec()).map_err(|_| TraceError::Corrupt("invalid UTF-8"))
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uv(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// CRC32 (IEEE, reflected, polynomial `0xEDB88320`) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            put_uv(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &vals {
            assert_eq!(c.uv().unwrap(), v);
        }
        assert!(c.at_end());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn truncated_and_overlong_varints_error() {
        let mut c = Cursor::new(&[0x80]);
        assert!(matches!(c.uv(), Err(TraceError::Truncated)));
        let mut c = Cursor::new(&[0xff; 11]);
        assert!(matches!(c.uv(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn string_round_trip_and_caps() {
        let mut buf = Vec::new();
        put_str(&mut buf, "alpha");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.str().unwrap(), "alpha");
        let mut huge = Vec::new();
        put_uv(&mut huge, 1 << 40);
        let mut c = Cursor::new(&huge);
        assert!(matches!(c.str(), Err(TraceError::Corrupt(_))));
    }
}
