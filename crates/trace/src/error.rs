//! Typed trace errors.

use std::fmt;

/// Why a trace could not be read or written.
///
/// Every decoder failure mode is a value here — a trace file is external
/// input and must never be able to panic the reader, no matter how it was
/// truncated, bit-flipped, or fabricated.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file ended in the middle of a frame or payload.
    Truncated,
    /// A chunk's stored CRC32 does not match its payload.
    BadCrc {
        /// Index of the failing frame (header = 0).
        frame: usize,
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The byte stream decodes to something structurally impossible.
    Corrupt(&'static str),
    /// The header is self-consistent but names something this build does
    /// not have (unknown ISA, unknown buildset).
    BadHeader(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => f.write_str("not a LIS trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v} (reader supports {})", crate::VERSION)
            }
            TraceError::Truncated => f.write_str("trace truncated mid-frame"),
            TraceError::BadCrc { frame, stored, computed } => write!(
                f,
                "frame {frame}: CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceError::BadHeader(what) => write!(f, "bad trace header: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// Why a recording run could not complete.
#[derive(Debug)]
pub enum RecordError {
    /// The recording simulator could not be constructed.
    Build(lis_runtime::BuildError),
    /// The program image failed to load.
    Load(lis_core::Fault),
    /// The run stopped without halting (budget or deadline, not a fault —
    /// faults are recorded in the trace and are a normal ending).
    Stop(lis_runtime::SimStop),
    /// Writing the trace failed.
    Trace(TraceError),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Build(e) => write!(f, "record: build error: {e}"),
            RecordError::Load(e) => write!(f, "record: image load fault: {e}"),
            RecordError::Stop(e) => write!(f, "record: run did not halt: {e}"),
            RecordError::Trace(e) => write!(f, "record: {e}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<TraceError> for RecordError {
    fn from(e: TraceError) -> RecordError {
        RecordError::Trace(e)
    }
}
