//! The container format: magic, frames, header and footer payloads.
//!
//! ```text
//! file   := magic version frame*
//! magic  := "LISTRACE"            (8 bytes)
//! version:= u32 LE                (currently 2)
//! frame  := kind:u8  payload_len:u32 LE  crc32:u32 LE  ninsts:u32 LE  payload
//! kind   := 'H' (header, first) | 'D' (data chunk) | 'F' (footer, last)
//! ```
//!
//! `crc32` covers the payload bytes; `ninsts` is the number of records in a
//! `D` frame (0 for `H`/`F`). Data payloads target [`CHUNK_TARGET`] bytes
//! and each decodes independently of every other chunk.

use crate::error::TraceError;
use crate::wire::{crc32, put_str, put_uv, Cursor};
use lis_core::{Semantic, Visibility};
use lis_runtime::SimStats;
use std::io::{Read, Write};

/// File magic, first 8 bytes of every trace.
pub const MAGIC: &[u8; 8] = b"LISTRACE";

/// Frame kind: self-describing header.
pub const KIND_HEADER: u8 = b'H';
/// Frame kind: data chunk of records.
pub const KIND_DATA: u8 = b'D';
/// Frame kind: footer with run totals.
pub const KIND_FOOTER: u8 = b'F';

/// Target payload size of one data chunk. A chunk is flushed as soon as its
/// payload reaches this size, so real chunks span `CHUNK_TARGET` to roughly
/// `CHUNK_TARGET` plus one record — and the flush rule is a pure function of
/// the record stream, which keeps re-encoding byte-identical.
pub const CHUNK_TARGET: usize = 64 * 1024;

/// Upper bound accepted for any frame payload; a length field beyond this is
/// corruption, not a big trace (real chunks are ~64 KiB).
pub const MAX_PAYLOAD: usize = 16 * 1024 * 1024;

/// The self-describing trace header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// ISA the trace was recorded on (`alpha`, `arm`, `ppc`).
    pub isa: String,
    /// Name of the buildset whose interface was recorded.
    pub buildset: String,
    /// The recorded visibility (field mask + operand identifiers).
    pub visibility: Visibility,
    /// Semantic level of the recording interface.
    pub semantic: Semantic,
    /// Whether the recording interface had speculation support.
    pub speculation: bool,
    /// Workload label (kernel name or a caller-chosen tag).
    pub kernel: String,
    /// Seed used to generate the workload (0 for fixed kernels).
    pub seed: u64,
    /// Field dictionary: `(field id, specification name)` for every field
    /// the recording ISA declares — makes the trace self-describing even if
    /// field numbering changes between toolkit versions.
    pub fields: Vec<(u8, String)>,
}

impl TraceMeta {
    /// Serializes the header payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.isa);
        put_str(&mut out, &self.buildset);
        put_uv(&mut out, self.visibility.fields.0);
        out.push(u8::from(self.visibility.operand_ids));
        out.push(match self.semantic {
            Semantic::Block => 0,
            Semantic::One => 1,
            Semantic::Step => 2,
        });
        out.push(u8::from(self.speculation));
        put_str(&mut out, &self.kernel);
        put_uv(&mut out, self.seed);
        put_uv(&mut out, self.fields.len() as u64);
        for (id, name) in &self.fields {
            out.push(*id);
            put_str(&mut out, name);
        }
        out
    }

    /// Deserializes the header payload.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`]/[`TraceError::Truncated`] on malformed bytes.
    pub fn decode(payload: &[u8]) -> Result<TraceMeta, TraceError> {
        let mut c = Cursor::new(payload);
        let isa = c.str()?;
        let buildset = c.str()?;
        let mask = c.uv()?;
        if mask & !lis_core::FieldSet::ALL.0 != 0 {
            return Err(TraceError::Corrupt("visibility mask out of range"));
        }
        let operand_ids = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(TraceError::Corrupt("bad operand_ids flag")),
        };
        let semantic = match c.u8()? {
            0 => Semantic::Block,
            1 => Semantic::One,
            2 => Semantic::Step,
            _ => return Err(TraceError::Corrupt("bad semantic tag")),
        };
        let speculation = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(TraceError::Corrupt("bad speculation flag")),
        };
        let kernel = c.str()?;
        let seed = c.uv()?;
        let nfields = c.uv()?;
        if nfields > lis_core::MAX_FIELDS as u64 {
            return Err(TraceError::Corrupt("field dictionary too large"));
        }
        let mut fields = Vec::with_capacity(nfields as usize);
        for _ in 0..nfields {
            let id = c.u8()?;
            fields.push((id, c.str()?));
        }
        if !c.at_end() {
            return Err(TraceError::Corrupt("trailing bytes after header"));
        }
        Ok(TraceMeta {
            isa,
            buildset,
            visibility: Visibility { fields: lis_core::FieldSet(mask), operand_ids },
            semantic,
            speculation,
            kernel,
            seed,
            fields,
        })
    }
}

/// The trace footer: whole-run facts a replay cannot recompute from the
/// record stream alone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceFooter {
    /// Total records in the trace (must equal the sum of chunk `ninsts`).
    pub insts: u64,
    /// Final engine statistics of the recording run.
    pub stats: SimStats,
    /// Program exit code.
    pub exit_code: i64,
    /// Whether the program halted (false when the trace ends at a fault).
    pub halted: bool,
    /// Captured program stdout.
    pub stdout: Vec<u8>,
}

impl TraceFooter {
    /// Serializes the footer payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_uv(&mut out, self.insts);
        let s = &self.stats;
        for v in [
            s.insts,
            s.calls,
            s.blocks,
            s.faults,
            s.blocks_built,
            s.checkpoints,
            s.rollbacks,
            s.fallback_blocks,
            s.published_values,
            s.published_opsets,
            s.undo_records,
        ] {
            put_uv(&mut out, v);
        }
        crate::wire::put_iv(&mut out, self.exit_code);
        out.push(u8::from(self.halted));
        put_uv(&mut out, self.stdout.len() as u64);
        out.extend_from_slice(&self.stdout);
        out
    }

    /// Deserializes the footer payload.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`]/[`TraceError::Truncated`] on malformed bytes.
    pub fn decode(payload: &[u8]) -> Result<TraceFooter, TraceError> {
        let mut c = Cursor::new(payload);
        let insts = c.uv()?;
        let stats = SimStats {
            insts: c.uv()?,
            calls: c.uv()?,
            blocks: c.uv()?,
            faults: c.uv()?,
            blocks_built: c.uv()?,
            checkpoints: c.uv()?,
            rollbacks: c.uv()?,
            fallback_blocks: c.uv()?,
            published_values: c.uv()?,
            published_opsets: c.uv()?,
            undo_records: c.uv()?,
            // Not on the wire: recording runs are never supervised and never
            // seeded from a shared store, so both counters are always zero
            // and format v2 stays unchanged.
            demotions: 0,
            seeded_blocks: 0,
        };
        let exit_code = c.iv()?;
        let halted = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(TraceError::Corrupt("bad halted flag")),
        };
        let len = c.uv()?;
        if len > MAX_PAYLOAD as u64 {
            return Err(TraceError::Corrupt("stdout length out of range"));
        }
        let stdout = c.bytes(len as usize)?.to_vec();
        if !c.at_end() {
            return Err(TraceError::Corrupt("trailing bytes after footer"));
        }
        Ok(TraceFooter { insts, stats, exit_code, halted, stdout })
    }
}

/// Writes one frame.
///
/// # Errors
///
/// [`TraceError::Io`] on write failure.
pub fn write_frame(
    w: &mut impl Write,
    kind: u8,
    ninsts: u32,
    payload: &[u8],
) -> Result<(), TraceError> {
    w.write_all(&[kind])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(&ninsts.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// One frame as read from a stream.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame kind byte.
    pub kind: u8,
    /// Records in this frame (data frames only).
    pub ninsts: u32,
    /// Verified payload bytes.
    pub payload: Vec<u8>,
}

/// Reads the next frame, verifying its CRC. Returns `Ok(None)` at a clean
/// end of stream (EOF exactly at a frame boundary).
///
/// # Errors
///
/// [`TraceError::Truncated`] on a partial frame, [`TraceError::BadCrc`] on
/// an integrity failure, [`TraceError::Corrupt`] on an unknown kind or an
/// absurd length. `frame_index` is used only for error reporting.
pub fn read_frame(r: &mut impl Read, frame_index: usize) -> Result<Option<Frame>, TraceError> {
    let mut kind = [0u8; 1];
    match r.read(&mut kind)? {
        0 => return Ok(None),
        1 => {}
        _ => unreachable!(),
    }
    let kind = kind[0];
    if !matches!(kind, KIND_HEADER | KIND_DATA | KIND_FOOTER) {
        return Err(TraceError::Corrupt("unknown frame kind"));
    }
    let mut fixed = [0u8; 12];
    r.read_exact(&mut fixed).map_err(|_| TraceError::Truncated)?;
    let len = u32::from_le_bytes(fixed[0..4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(fixed[4..8].try_into().expect("4 bytes"));
    let ninsts = u32::from_le_bytes(fixed[8..12].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(TraceError::Corrupt("frame payload length out of range"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|_| TraceError::Truncated)?;
    let computed = crc32(&payload);
    if computed != stored {
        return Err(TraceError::BadCrc { frame: frame_index, stored, computed });
    }
    Ok(Some(Frame { kind, ninsts, payload }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            isa: "alpha".into(),
            buildset: "block-all".into(),
            visibility: Visibility::ALL,
            semantic: Semantic::Block,
            speculation: false,
            kernel: "sieve".into(),
            seed: 42,
            fields: vec![(9, "opcode".into()), (16, "shift_out".into())],
        }
    }

    #[test]
    fn meta_round_trip() {
        let m = meta();
        assert_eq!(TraceMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn footer_round_trip() {
        let f = TraceFooter {
            insts: 1234,
            stats: SimStats { insts: 1234, calls: 99, ..Default::default() },
            exit_code: -7,
            halted: true,
            stdout: b"out\n".to_vec(),
        };
        assert_eq!(TraceFooter::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn frame_round_trip_and_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_DATA, 3, b"payload").unwrap();
        let f = read_frame(&mut buf.as_slice(), 1).unwrap().unwrap();
        assert_eq!((f.kind, f.ninsts, f.payload.as_slice()), (KIND_DATA, 3, &b"payload"[..]));
        // Flip a payload bit: CRC must catch it.
        let n = buf.len();
        buf[n - 1] ^= 1;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1),
            Err(TraceError::BadCrc { frame: 1, .. })
        ));
        // Truncate mid-payload.
        buf.truncate(n - 3);
        assert!(matches!(read_frame(&mut buf.as_slice(), 1), Err(TraceError::Truncated)));
    }

    #[test]
    fn hostile_meta_rejected() {
        assert!(TraceMeta::decode(&[]).is_err());
        let mut p = meta().encode();
        p.push(0); // trailing garbage
        assert!(matches!(TraceMeta::decode(&p), Err(TraceError::Corrupt(_))));
    }
}
