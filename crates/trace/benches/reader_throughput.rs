//! Reader throughput: records decoded per second from an in-memory trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lis_trace::{record, RecordOptions, Trace, TraceReader, TraceRecord};

fn recorded_trace(isa: &str, kernel: &str) -> (Vec<u8>, u64) {
    let spec = lis_workloads::spec_of(isa);
    let image = lis_workloads::suite_of(isa)
        .iter()
        .find(|w| w.name == kernel)
        .expect("kernel exists")
        .assemble()
        .expect("kernel assembles");
    let mut bytes = Vec::new();
    let opts = RecordOptions { kernel: kernel.to_string(), ..Default::default() };
    let summary = record(spec, &image, &mut bytes, &opts).expect("record");
    (bytes, summary.insts)
}

fn bench_reader(c: &mut Criterion) {
    let (bytes, insts) = recorded_trace("alpha", "sieve");
    let mut group = c.benchmark_group("trace_reader");
    group.throughput(Throughput::Elements(insts));

    group.bench_with_input(BenchmarkId::new("decode_all", "alpha-sieve"), &bytes, |b, bytes| {
        b.iter(|| {
            let trace = Trace::read_from(bytes.as_slice()).expect("read");
            trace.records(None).expect("decode").len()
        });
    });

    group.bench_with_input(BenchmarkId::new("stream_chunks", "alpha-sieve"), &bytes, |b, bytes| {
        b.iter(|| {
            let mut r = TraceReader::open(bytes.as_slice()).expect("open");
            let mut buf: Vec<TraceRecord> = Vec::new();
            let mut n = 0usize;
            while let Some(k) = r.next_chunk(&mut buf).expect("chunk") {
                n += k;
            }
            n
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reader
}
criterion_main!(benches);
