//! Directed per-instruction validation for the ARM description: every
//! instruction (and the condition/flag/shifter machinery) with known inputs
//! and hand-computed results.

use lis_core::{DynInst, ONE_ALL};
use lis_runtime::Simulator;

const N: u64 = 1 << 31;
const Z: u64 = 1 << 30;
const C: u64 = 1 << 29;
const V: u64 = 1 << 28;

/// Assembles `body`, presets GPRs and the CPSR, executes the body (bounded
/// by its static length), and returns the simulator.
fn exec(body: &str, setup: &[(usize, u64)], cpsr: u64) -> Simulator {
    let src = format!("_start:\n{body}\n");
    let image = lis_isa_arm::assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let n = image.sections.iter().find(|s| s.name == ".text").unwrap().bytes.len() / 4;
    let mut sim = Simulator::new(lis_isa_arm::spec(), ONE_ALL).unwrap();
    sim.load_program(&image).unwrap();
    for &(r, v) in setup {
        sim.state.gpr[r] = v;
    }
    sim.state.spr[0] = cpsr;
    let mut di = DynInst::new();
    let end = 0x1000 + 4 * n as u64;
    // Dynamic bound is generous: bodies may loop (e.g. bdnz tests).
    for _ in 0..1000 {
        if sim.state.pc >= end {
            break;
        }
        sim.next_inst(&mut di).unwrap();
        assert!(di.fault.is_none(), "fault {:?} in `{body}`", di.fault);
    }
    sim
}

type Case = (&'static str, &'static [(usize, u64)], &'static [(usize, u64)]);

fn table(cases: &[Case]) {
    for (asm, setup, expect) in cases {
        let sim = exec(asm, setup, 0);
        for &(r, v) in *expect {
            assert_eq!(sim.state.gpr[r], v, "`{asm}`: r{r}");
        }
    }
}

/// Runs one flag-setting instruction and returns the resulting NZCV nibble.
fn flags_of(asm: &str, setup: &[(usize, u64)], cpsr_in: u64) -> u64 {
    exec(asm, setup, cpsr_in).state.spr[0] >> 28
}

#[test]
fn data_processing_results() {
    table(&[
        ("and r3, r1, r2", &[(1, 0xf0f0), (2, 0xff00)], &[(3, 0xf000)]),
        ("eor r3, r1, r2", &[(1, 0xff00), (2, 0x0ff0)], &[(3, 0xf0f0)]),
        ("sub r3, r1, r2", &[(1, 9), (2, 7)], &[(3, 2)]),
        ("rsb r3, r1, r2", &[(1, 7), (2, 9)], &[(3, 2)]),
        ("add r3, r1, r2", &[(1, 7), (2, 9)], &[(3, 16)]),
        ("orr r3, r1, r2", &[(1, 0xf0), (2, 0x0f)], &[(3, 0xff)]),
        ("mov r3, r1", &[(1, 123)], &[(3, 123)]),
        ("bic r3, r1, r2", &[(1, 0xff), (2, 0x0f)], &[(3, 0xf0)]),
        ("mvn r3, r1", &[(1, 0)], &[(3, 0xffff_ffff)]),
        ("mul r3, r1, r2", &[(1, 6), (2, 7)], &[(3, 42)]),
        ("mla r3, r1, r2, r4", &[(1, 6), (2, 7), (4, 8)], &[(3, 50)]),
        ("clz r3, r1", &[(1, 0x10)], &[(3, 27)]),
        ("clz r3, r1", &[(1, 0)], &[(3, 32)]),
    ]);
}

#[test]
fn carry_dependent_ops() {
    // adc/sbc/rsc read C.
    let sim = exec("adc r3, r1, r2", &[(1, 1), (2, 2)], C);
    assert_eq!(sim.state.gpr[3], 4);
    let sim = exec("adc r3, r1, r2", &[(1, 1), (2, 2)], 0);
    assert_eq!(sim.state.gpr[3], 3);
    let sim = exec("sbc r3, r1, r2", &[(1, 9), (2, 4)], C);
    assert_eq!(sim.state.gpr[3], 5);
    let sim = exec("sbc r3, r1, r2", &[(1, 9), (2, 4)], 0);
    assert_eq!(sim.state.gpr[3], 4);
    let sim = exec("rsc r3, r1, r2", &[(1, 4), (2, 9)], 0);
    assert_eq!(sim.state.gpr[3], 4);
}

#[test]
fn flag_setting() {
    // Z and N.
    assert_eq!(flags_of("subs r3, r1, r2", &[(1, 5), (2, 5)], 0), (Z | C) >> 28);
    assert_eq!(flags_of("subs r3, r1, r2", &[(1, 4), (2, 5)], 0), N >> 28);
    // Unsigned borrow: C clear when a < b.
    assert_eq!(flags_of("cmp r1, r2", &[(1, 4), (2, 5)], 0) & 0x2, 0);
    assert_eq!(flags_of("cmp r1, r2", &[(1, 5), (2, 4)], 0) & 0x2, 0x2);
    // Signed overflow: max positive + 1.
    assert_eq!(flags_of("adds r3, r1, r2", &[(1, 0x7fff_ffff), (2, 1)], 0), (N | V) >> 28);
    // Carry out of the top bit.
    assert_eq!(flags_of("adds r3, r1, r2", &[(1, 0xffff_ffff), (2, 1)], 0), (Z | C) >> 28);
    // tst/teq/cmn set flags without writing a register.
    let sim = exec("tst r1, r2", &[(1, 1), (2, 2)], 0);
    assert_eq!(sim.state.spr[0] & Z, Z);
    assert_eq!(flags_of("teq r1, r2", &[(1, 5), (2, 5)], 0) & 0x4, 0x4);
    assert_eq!(flags_of("cmn r1, r2", &[(1, 1), (2, 0xffff_ffff)], 0) & 0x6, 0x6);
    // Logical S-ops take C from the shifter.
    assert_eq!(flags_of("movs r3, r1, lsr #1", &[(1, 3)], 0) & 0x2, 0x2);
    assert_eq!(flags_of("movs r3, r1, lsr #1", &[(1, 2)], 0) & 0x2, 0);
    // muls sets N/Z and preserves C and V.
    assert_eq!(flags_of("muls r3, r1, r2", &[(1, 0), (2, 5)], C | V), (Z | C | V) >> 28);
}

#[test]
fn shifter_forms() {
    table(&[
        ("mov r3, r1, lsl #4", &[(1, 0xf)], &[(3, 0xf0)]),
        ("mov r3, r1, lsr #4", &[(1, 0xf0)], &[(3, 0xf)]),
        ("mov r3, r1, asr #4", &[(1, 0x8000_0000)], &[(3, 0xf800_0000)]),
        ("mov r3, r1, ror #8", &[(1, 0xaa)], &[(3, 0xaa00_0000)]),
        ("mov r3, r1, lsr #32", &[(1, 0x8000_0000)], &[(3, 0)]),
        ("mov r3, r1, asr #32", &[(1, 0x8000_0000)], &[(3, 0xffff_ffff)]),
        ("add r3, r2, r1, lsl r4", &[(1, 1), (2, 1), (4, 8)], &[(3, 0x101)]),
        ("mov r3, r1, lsr r4", &[(1, 0x100), (4, 8)], &[(3, 1)]),
        ("mov r3, r1, asr r4", &[(1, 0x8000_0000), (4, 40)], &[(3, 0xffff_ffff)]),
        ("mov r3, r1, ror r4", &[(1, 0xf), (4, 4)], &[(3, 0xf000_0000)]),
    ]);
    // RRX: ror #0 rotates through carry.
    let sim = exec("mov r3, r1, ror #0", &[(1, 2)], C);
    assert_eq!(sim.state.gpr[3], 0x8000_0001);
}

#[test]
fn conditional_execution_matrix() {
    // (cond, cpsr, executes?)
    let cases: &[(&str, u64, bool)] = &[
        ("eq", Z, true),
        ("eq", 0, false),
        ("ne", 0, true),
        ("cs", C, true),
        ("cc", C, false),
        ("mi", N, true),
        ("pl", N, false),
        ("vs", V, true),
        ("vc", V, false),
        ("hi", C, true),
        ("hi", C | Z, false),
        ("ls", Z, true),
        ("ge", N | V, true),
        ("ge", N, false),
        ("lt", N, true),
        ("gt", 0, true),
        ("gt", Z, false),
        ("le", Z, true),
        ("al", 0, true),
    ];
    for &(cond, cpsr, executes) in cases {
        let sim = exec(&format!("mov{cond} r3, #1"), &[], cpsr);
        assert_eq!(sim.state.gpr[3], u64::from(executes), "mov{cond} under {cpsr:#010x}");
    }
}

#[test]
fn loads_and_stores_directed() {
    table(&[
        ("str r1, [r2]\nldr r3, [r2]", &[(1, 0xdead_beef), (2, 0x2000)], &[(3, 0xdead_beef)]),
        ("strb r1, [r2]\nldrb r3, [r2]", &[(1, 0x1ff), (2, 0x2000)], &[(3, 0xff)]),
        ("strh r1, [r2]\nldrh r3, [r2]", &[(1, 0x1_ffff), (2, 0x2000)], &[(3, 0xffff)]),
        ("strb r1, [r2]\nldrsb r3, [r2]", &[(1, 0x80), (2, 0x2000)], &[(3, 0xffff_ff80)]),
        ("strh r1, [r2]\nldrsh r3, [r2]", &[(1, 0x8000), (2, 0x2000)], &[(3, 0xffff_8000)]),
        // pre-index with writeback
        ("str r1, [r2, #8]!", &[(1, 5), (2, 0x2000)], &[(2, 0x2008)]),
        // post-index
        ("ldr r3, [r2], #4", &[(2, 0x2000)], &[(2, 0x2004)]),
        // negative offset
        ("str r1, [r2, #-4]\nldr r3, [r2, #-4]", &[(1, 9), (2, 0x2010)], &[(3, 9)]),
        // register offset with shift
        (
            "str r1, [r2, r4, lsl #2]\nldr r3, [r2, r4, lsl #2]",
            &[(1, 77), (2, 0x2000), (4, 3)],
            &[(3, 77)],
        ),
        // halfword register offset
        ("strh r1, [r2, r4]\nldrh r3, [r2, r4]", &[(1, 31), (2, 0x2000), (4, 6)], &[(3, 31)]),
    ]);
}

#[test]
fn branch_instructions() {
    // b skips; bl links.
    let sim = exec("b skip\nmov r9, #1\nskip: mov r10, #1", &[], 0);
    assert_eq!(sim.state.gpr[9], 0);
    assert_eq!(sim.state.gpr[10], 1);
    let sim = exec("bl skip\nskip: mov r10, #1", &[], 0);
    assert_eq!(sim.state.gpr[14], 0x1004, "bl links pc+4");
    // Conditional branch falls through when the condition fails.
    let sim = exec("beq skip\nmov r9, #1\nskip: mov r10, #1", &[], 0);
    assert_eq!(sim.state.gpr[9], 1);
    // bx returns through a register.
    let sim = exec("bx r1\n.org 0x1010\nmov r10, #1", &[(1, 0x1010)], 0);
    assert_eq!(sim.state.gpr[10], 1);
}

#[test]
fn swi_and_r15() {
    // swi dispatches the LIS OS ABI.
    let sim = exec("mov r7, #3\nmov r0, #65\nswi 0", &[], 0);
    assert_eq!(sim.os.stdout, b"A");
    // Reading pc through a data op sees pc + 8.
    let sim = exec("mov r3, pc", &[], 0);
    assert_eq!(sim.state.gpr[3], 0x1008);
}

#[test]
fn every_instruction_is_covered_by_directed_tests() {
    let me = include_str!("directed.rs");
    let missing: Vec<&str> =
        lis_isa_arm::spec().insts.iter().map(|d| d.name).filter(|n| !me.contains(*n)).collect();
    assert!(missing.is_empty(), "instructions without directed tests: {missing:?}");
}
