//! End-to-end ARM execution tests through the synthesized simulators.

use lis_core::{ONE_ALL, STANDARD_BUILDSETS};
use lis_runtime::Simulator;

fn run(src: &str) -> Simulator {
    let image = lis_isa_arm::assemble(src).expect("assembles");
    let mut sim = Simulator::new(lis_isa_arm::spec(), ONE_ALL).unwrap();
    sim.load_program(&image).unwrap();
    sim.run_to_halt(1_000_000).unwrap();
    sim
}

const EXIT0: &str = "
    mov r7, #1
    mov r0, #0
    swi 0
";

#[test]
fn dp_and_shifter() {
    let sim = run(&format!(
        "
_start: mov r1, #100
        add r2, r1, #20        ; 120
        sub r3, r2, r1         ; 20
        rsb r4, r1, #250       ; 150
        mov r5, r1, lsl #3     ; 800
        mov r6, r5, lsr #2     ; 200
        orr r8, r1, #3         ; 103
        and r9, r8, #0xf       ; 7
        bic r10, r8, #0xf      ; 96
        mvn r11, #0            ; 0xffffffff
        eor r12, r11, r11      ; 0
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[2], 120);
    assert_eq!(sim.state.gpr[3], 20);
    assert_eq!(sim.state.gpr[4], 150);
    assert_eq!(sim.state.gpr[5], 800);
    assert_eq!(sim.state.gpr[6], 200);
    assert_eq!(sim.state.gpr[8], 103);
    assert_eq!(sim.state.gpr[9], 7);
    assert_eq!(sim.state.gpr[10], 96);
    assert_eq!(sim.state.gpr[11], 0xffff_ffff);
    assert_eq!(sim.state.gpr[12], 0);
}

#[test]
fn flags_and_conditional_execution() {
    let sim = run(&format!(
        "
_start: mov r1, #5
        cmp r1, #5
        moveq r2, #1          ; taken
        movne r3, #1          ; skipped
        cmp r1, #9
        movlt r4, #2          ; taken (5 < 9)
        movge r5, #2          ; skipped
        subs r6, r1, r1       ; sets Z
        moveq r8, #3
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[2], 1);
    assert_eq!(sim.state.gpr[3], 0);
    assert_eq!(sim.state.gpr[4], 2);
    assert_eq!(sim.state.gpr[5], 0);
    assert_eq!(sim.state.gpr[6], 0);
    assert_eq!(sim.state.gpr[8], 3);
}

#[test]
fn carry_chain_64_bit_add() {
    // 0xffffffff + 1 = 0 carry 1; adc propagates into the high word.
    let sim = run(&format!(
        "
_start: mvn r1, #0           ; low a
        mov r2, #1           ; low b
        mov r3, #2           ; high a
        mov r4, #3           ; high b
        adds r5, r1, r2      ; low sum = 0, C=1
        adc r6, r3, r4       ; high sum = 6
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[5], 0);
    assert_eq!(sim.state.gpr[6], 6);
}

#[test]
fn memory_addressing_modes() {
    let sim = run(&format!(
        "
_start: mov r1, #0x2000
        mov r2, #42
        str r2, [r1]           ; [0x2000] = 42
        str r2, [r1, #4]
        ldr r3, [r1]
        mov r4, #0x2000
        ldr r5, [r4], #8       ; post: r5 = 42, r4 = 0x2008
        str r2, [r4, #-4]!     ; pre wb: r4 = 0x2004
        ldr r6, [r1, #4]
        mov r7, #4
        ldr r8, [r1, r7]       ; reg offset
        mov r9, #1
        ldr r10, [r1, r9, lsl #2]
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[3], 42);
    assert_eq!(sim.state.gpr[5], 42);
    assert_eq!(sim.state.gpr[4], 0x2004);
    assert_eq!(sim.state.gpr[6], 42);
    assert_eq!(sim.state.gpr[8], 42);
    assert_eq!(sim.state.gpr[10], 42);
}

#[test]
fn byte_halfword_and_signed() {
    let sim = run(&format!(
        "
_start: mov r1, #0x2000
        mvn r2, #0            ; 0xffffffff
        strb r2, [r1]
        strh r2, [r1, #2]
        ldrb r3, [r1]         ; 0xff
        ldrh r4, [r1, #2]     ; 0xffff
        ldrsb r5, [r1]        ; -1
        ldrsh r6, [r1, #2]    ; -1
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[3], 0xff);
    assert_eq!(sim.state.gpr[4], 0xffff);
    assert_eq!(sim.state.gpr[5], 0xffff_ffff);
    assert_eq!(sim.state.gpr[6], 0xffff_ffff);
}

#[test]
fn loop_multiply_and_clz() {
    let sim = run(&format!(
        "
_start: mov r1, #0            ; acc
        mov r2, #10           ; i
loop:   mla r1, r2, r2, r1    ; acc += i*i
        subs r2, r2, #1
        bne loop
        mov r3, #1
        mov r3, r3, lsl #20
        clz r4, r3            ; 11
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[1], 385); // sum of squares 1..10
    assert_eq!(sim.state.gpr[4], 11);
}

#[test]
fn calls_with_bl_and_bx() {
    let sim = run(&format!(
        "
_start: mov r0, #21
        bl double
        mov r9, r0
        {EXIT0}
double: add r0, r0, r0
        bx lr
"
    ));
    assert_eq!(sim.state.gpr[9], 42);
}

#[test]
fn pc_relative_literal_load() {
    let sim = run(&format!(
        "
_start: ldr r1, big
        ldr r2, big+4
        b over
big:    .word 0x12345678
        .word 0x9abcdef0
over:   {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[1], 0x1234_5678);
    assert_eq!(sim.state.gpr[2], 0x9abc_def0);
}

#[test]
fn syscall_output_and_conditional_swi() {
    let sim = run("
_start: mov r7, #4            ; PUTUDEC
        mov r0, #77
        swi 0
        cmp r0, #0
        movne r7, #3           ; PUTC
        movne r0, #'!'
        swine 0
        mov r7, #1
        mov r0, #9
        swi 0
");
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "77\n!");
    assert_eq!(sim.state.exit_code, 9);
}

#[test]
fn shift_by_register_and_rrx() {
    let sim = run(&format!(
        "
_start: mov r1, #1
        mov r2, #8
        mov r3, r1, lsl r2     ; 256
        movs r4, r1, lsr #1    ; 0, C=1 (bit0 out)
        mov r5, #0
        mov r6, r5, ror #0     ; RRX: C goes into bit 31
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[3], 256);
    assert_eq!(sim.state.gpr[4], 0);
    assert_eq!(sim.state.gpr[6], 0x8000_0000);
}

#[test]
fn all_interfaces_agree_on_arm() {
    let src = format!(
        "
_start: mov r1, #0
        mov r2, #30
loop:   add r1, r1, r2
        subs r2, r2, #1
        bne loop
        mov r7, #4
        mov r0, r1
        swi 0
        {EXIT0}"
    );
    let image = lis_isa_arm::assemble(&src).unwrap();
    let mut outputs = Vec::new();
    for bs in STANDARD_BUILDSETS {
        let mut sim = Simulator::new(lis_isa_arm::spec(), bs).unwrap();
        sim.load_program(&image).unwrap();
        sim.run_to_halt(1_000_000).unwrap();
        outputs.push((
            bs.name,
            String::from_utf8_lossy(sim.stdout()).into_owned(),
            sim.state.gpr,
            sim.state.spr,
        ));
    }
    for (name, out, gpr, spr) in &outputs[1..] {
        assert_eq!(out, &outputs[0].1, "{name}");
        assert_eq!(gpr, &outputs[0].2, "{name}");
        assert_eq!(spr, &outputs[0].3, "{name}");
    }
    assert_eq!(outputs[0].1, "465\n");
}
