//! The single specification of the ARM v5 (user-mode integer) instruction
//! set.
//!
//! Covered: the sixteen data-processing operations (immediate, register
//! shift-by-immediate, and register shift-by-register forms, with the S
//! bit), `mul`/`mla`, `clz`, word/byte loads and stores with every
//! addressing mode (pre/post-indexed, writeback, register offsets with
//! shifts), halfword and signed loads/stores, `b`/`bl`, `bx`, and `swi`.
//! Every instruction is conditional, as on real ARM.
//!
//! Subset notes (documented deviations): no Thumb (so `bx` clears the low
//! two target bits), no `ldm`/`stm`, writes to `r15` via data-processing
//! results are discarded, and unaligned word accesses fault instead of
//! rotating.

use crate::fields::{F_ARM_CC, F_SHIFT_CARRY, F_SHIFT_OUT};
use crate::regs::{flags, CPSR, GPR};
use lis_core::{
    flow, generic_operand_fetch, generic_writeback, step_actions, Exec, Fault, Flow, FlowItem,
    InstClass, InstDef, OperandDir, OperandSpec, Step, F_ALU_OUT, F_COND, F_DEST1, F_DEST2,
    F_EFF_ADDR, F_IMM, F_MEM_DATA, F_SRC1, F_SRC2, F_SRC3,
};

const M32: u64 = 0xffff_ffff;

/// Inter-step dataflow every conditional ARM instruction adds on top of its
/// class defaults: the decoded condition code flows decode→evaluate, and the
/// evaluated predicate flows into the later steps that honour it.
pub const ARM_FLOWS: &[Flow] = &[
    flow(FlowItem::Field(F_ARM_CC), Step::Decode, Step::Evaluate),
    flow(FlowItem::Field(F_COND), Step::Evaluate, Step::Memory),
    flow(FlowItem::Field(F_COND), Step::Evaluate, Step::Writeback),
    flow(FlowItem::Field(F_COND), Step::Evaluate, Step::Exception),
];

// ---------------------------------------------------------------------
// Condition and flag helpers
// ---------------------------------------------------------------------

fn cond_pass(cc: u32, cpsr: u64) -> bool {
    let n = cpsr & flags::N != 0;
    let z = cpsr & flags::Z != 0;
    let c = cpsr & flags::C != 0;
    let v = cpsr & flags::V != 0;
    match cc {
        0x0 => z,
        0x1 => !z,
        0x2 => c,
        0x3 => !c,
        0x4 => n,
        0x5 => !n,
        0x6 => v,
        0x7 => !v,
        0x8 => c && !z,
        0x9 => !c || z,
        0xa => n == v,
        0xb => n != v,
        0xc => !z && n == v,
        0xd => z || n != v,
        0xe => true,
        _ => false, // 0xF: the NV space — never executed in this subset
    }
}

/// Evaluates the condition; records the predicate and returns whether the
/// instruction executes.
fn check_cond(ex: &mut Exec<'_>) -> bool {
    let cc = ex.get(F_ARM_CC) as u32;
    let cpsr = ex.read_reg(CPSR.0, 0);
    let pass = cond_pass(cc, cpsr);
    ex.set(F_COND, pass as u64);
    pass
}

fn pack_nzcv(n: bool, z: bool, c: bool, v: bool) -> u64 {
    (n as u64) << 31 | (z as u64) << 30 | (c as u64) << 29 | (v as u64) << 28
}

// ---------------------------------------------------------------------
// The shifter (ARM ARM A5.1)
// ---------------------------------------------------------------------

/// Computes the shifted value and carry-out. `amount_from_reg` selects the
/// register-specified semantics (e.g. `lsl r3` with amount 0 keeps the old
/// carry; immediate `lsr #0` means `lsr #32`).
fn shift_compute(kind: u32, v: u64, amount: u32, amount_from_reg: bool, c_in: bool) -> (u64, bool) {
    let v = v & M32;
    match kind {
        // LSL
        0 => match amount {
            0 => (v, c_in),
            1..=31 => ((v << amount) & M32, v & (1 << (32 - amount)) != 0),
            32 => (0, v & 1 != 0),
            _ => (0, false),
        },
        // LSR
        1 => {
            let amount = if amount == 0 && !amount_from_reg { 32 } else { amount };
            match amount {
                0 => (v, c_in),
                1..=31 => (v >> amount, v & (1 << (amount - 1)) != 0),
                32 => (0, v & (1 << 31) != 0),
                _ => (0, false),
            }
        }
        // ASR
        2 => {
            let amount = if amount == 0 && !amount_from_reg { 32 } else { amount };
            match amount {
                0 => (v, c_in),
                1..=31 => {
                    (((v as u32 as i32) >> amount) as u32 as u64, v & (1 << (amount - 1)) != 0)
                }
                _ => {
                    let sign = v & (1 << 31) != 0;
                    (if sign { M32 } else { 0 }, sign)
                }
            }
        }
        // ROR / RRX
        _ => {
            if amount == 0 && !amount_from_reg {
                // RRX: rotate right through carry by one.
                let out = ((c_in as u64) << 31) | (v >> 1);
                (out, v & 1 != 0)
            } else if amount == 0 {
                (v, c_in)
            } else if amount.is_multiple_of(32) {
                (v, v & (1 << 31) != 0)
            } else {
                let a = amount % 32;
                let out = ((v >> a) | (v << (32 - a))) & M32;
                (out, out & (1 << 31) != 0)
            }
        }
    }
}

/// Computes the shifter operand for the current data-processing instruction:
/// `(value, carry_out)`. `has_rn` tells which source slots hold `rm`/`rs`.
fn shifter_operand(ex: &mut Exec<'_>, has_rn: bool) -> (u64, bool) {
    let w = ex.header.instr_bits;
    let c_in = ex.read_reg(CPSR.0, 0) & flags::C != 0;
    if w & 0x0200_0000 != 0 {
        // Immediate: imm8 rotated right by 2*rot (value precomputed at decode
        // into F_IMM); carry is bit 31 when the rotation is non-zero.
        let val = ex.get(F_IMM);
        let rot = (w >> 8) & 0xf;
        let carry = if rot == 0 { c_in } else { val & (1 << 31) != 0 };
        (val, carry)
    } else {
        let rm_val = if has_rn { ex.get(F_SRC2) } else { ex.get(F_SRC1) };
        let kind = (w >> 5) & 3;
        if w & 0x10 != 0 {
            // Shift by register (low byte of rs).
            let rs_val = if has_rn { ex.get(F_SRC3) } else { ex.get(F_SRC2) };
            shift_compute(kind, rm_val, (rs_val & 0xff) as u32, true, c_in)
        } else {
            shift_compute(kind, rm_val, (w >> 7) & 0x1f, false, c_in)
        }
    }
}

// ---------------------------------------------------------------------
// Data processing
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum FlagKind {
    Logical,
    Add,
    Sub,
}

/// Whether a data-processing opcode reads `rn` / writes `rd`.
const fn dp_shape(opcode: u32) -> (bool, bool) {
    let has_rn = !matches!(opcode, 13 | 15); // mov, mvn
    let has_rd = !matches!(opcode, 8..=11); // tst, teq, cmp, cmn
    (has_rn, has_rd)
}

fn dec_dp(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    let opcode = (w >> 21) & 0xf;
    let (has_rn, has_rd) = dp_shape(opcode);
    if has_rn {
        ex.ops.push_src(GPR, ((w >> 16) & 0xf) as u16);
    }
    if w & 0x0200_0000 != 0 {
        let rot = ((w >> 8) & 0xf) * 2;
        let val = (w & 0xff).rotate_right(rot);
        ex.set(F_IMM, val as u64);
    } else {
        ex.ops.push_src(GPR, (w & 0xf) as u16); // rm
        if w & 0x10 != 0 {
            ex.ops.push_src(GPR, ((w >> 8) & 0xf) as u16); // rs
        }
    }
    if has_rd {
        ex.ops.push_dest(GPR, ((w >> 12) & 0xf) as u16);
        if w & 0x0010_0000 != 0 {
            ex.ops.push_dest(CPSR, 0); // S bit: flags are the second dest
        }
    } else {
        ex.ops.push_dest(CPSR, 0); // tst/teq/cmp/cmn write only flags
    }
    Ok(())
}

macro_rules! dp_op {
    ($($fname:ident = ($kind:expr, $f:expr);)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            if !check_cond(ex) {
                return Ok(());
            }
            let w = ex.header.instr_bits;
            let opcode = (w >> 21) & 0xf;
            let (has_rn, has_rd) = dp_shape(opcode);
            let (b, shift_carry) = shifter_operand(ex, has_rn);
            ex.set(F_SHIFT_OUT, b);
            ex.set(F_SHIFT_CARRY, shift_carry as u64);
            let a = if has_rn { ex.get(F_SRC1) & M32 } else { 0 };
            let cpsr = ex.read_reg(CPSR.0, 0);
            let c_in = cpsr & flags::C != 0;
            #[allow(clippy::redundant_closure_call)]
            let wide: u64 = ($f)(a, b, c_in as u64);
            let res = wide & M32;
            ex.set(F_ALU_OUT, res);
            let s_bit = w & 0x0010_0000 != 0;
            if has_rd {
                ex.set(F_DEST1, res);
            }
            if s_bit || !has_rd {
                let n = res & (1 << 31) != 0;
                let z = res == 0;
                let (c, v) = match $kind {
                    FlagKind::Logical => (shift_carry, cpsr & flags::V != 0),
                    FlagKind::Add => (
                        wide > M32,
                        (!(a ^ b) & (a ^ res)) & (1 << 31) != 0,
                    ),
                    FlagKind::Sub => (
                        wide <= M32, // no borrow out of bit 32
                        ((a ^ b) & (a ^ res)) & (1 << 31) != 0,
                    ),
                };
                let new = pack_nzcv(n, z, c, v);
                if has_rd {
                    ex.set(F_DEST2, new);
                } else {
                    ex.set(F_DEST1, new);
                }
            }
            Ok(())
        })*
    };
}

// Sub-kind closures compute `a - b - borrow` with u64 wrapping arithmetic:
// a borrow wraps the result above `M32`, so C (no-borrow) is `wide <= M32`.
dp_op! {
    ev_and = (FlagKind::Logical, |a: u64, b: u64, _c: u64| a & b);
    ev_eor = (FlagKind::Logical, |a: u64, b: u64, _c: u64| a ^ b);
    ev_sub = (FlagKind::Sub, |a: u64, b: u64, _c: u64| a.wrapping_sub(b));
    ev_rsb = (FlagKind::Sub, |a: u64, b: u64, _c: u64| b.wrapping_sub(a));
    ev_add = (FlagKind::Add, |a: u64, b: u64, _c: u64| a + b);
    ev_adc = (FlagKind::Add, |a: u64, b: u64, c: u64| a + b + c);
    ev_sbc = (FlagKind::Sub, |a: u64, b: u64, c: u64| a.wrapping_sub(b).wrapping_sub(1 - c));
    ev_rsc = (FlagKind::Sub, |a: u64, b: u64, c: u64| b.wrapping_sub(a).wrapping_sub(1 - c));
    ev_tst = (FlagKind::Logical, |a: u64, b: u64, _c: u64| a & b);
    ev_teq = (FlagKind::Logical, |a: u64, b: u64, _c: u64| a ^ b);
    ev_cmp = (FlagKind::Sub, |a: u64, b: u64, _c: u64| a.wrapping_sub(b));
    ev_cmn = (FlagKind::Add, |a: u64, b: u64, _c: u64| a + b);
    ev_orr = (FlagKind::Logical, |a: u64, b: u64, _c: u64| a | b);
    ev_mov = (FlagKind::Logical, |_a: u64, b: u64, _c: u64| b);
    ev_bic = (FlagKind::Logical, |a: u64, b: u64, _c: u64| a & (!b & M32));
    ev_mvn = (FlagKind::Logical, |_a: u64, b: u64, _c: u64| !b & M32);
}

// ---------------------------------------------------------------------
// Multiply and clz
// ---------------------------------------------------------------------

fn dec_mul(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    ex.ops.push_src(GPR, (w & 0xf) as u16); // rm
    ex.ops.push_src(GPR, ((w >> 8) & 0xf) as u16); // rs
    if w & 0x0020_0000 != 0 {
        ex.ops.push_src(GPR, ((w >> 12) & 0xf) as u16); // rn (mla)
    }
    ex.ops.push_dest(GPR, ((w >> 16) & 0xf) as u16);
    if w & 0x0010_0000 != 0 {
        ex.ops.push_dest(CPSR, 0);
    }
    Ok(())
}

fn ev_mul(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if !check_cond(ex) {
        return Ok(());
    }
    let w = ex.header.instr_bits;
    let acc = if w & 0x0020_0000 != 0 { ex.get(F_SRC3) } else { 0 };
    let res = ex.get(F_SRC1).wrapping_mul(ex.get(F_SRC2)).wrapping_add(acc) & M32;
    ex.set(F_ALU_OUT, res);
    ex.set(F_DEST1, res);
    if w & 0x0010_0000 != 0 {
        let cpsr = ex.read_reg(CPSR.0, 0);
        let n = res & (1 << 31) != 0;
        let z = res == 0;
        let keep = cpsr & (flags::C | flags::V);
        ex.set(F_DEST2, pack_nzcv(n, z, false, false) | keep);
    }
    Ok(())
}

fn dec_clz(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    ex.ops.push_src(GPR, (w & 0xf) as u16);
    ex.ops.push_dest(GPR, ((w >> 12) & 0xf) as u16);
    Ok(())
}

fn ev_clz(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if !check_cond(ex) {
        return Ok(());
    }
    let res = (ex.get(F_SRC1) as u32).leading_zeros() as u64;
    ex.set(F_ALU_OUT, res);
    ex.set(F_DEST1, res);
    Ok(())
}

// ---------------------------------------------------------------------
// Loads and stores
// ---------------------------------------------------------------------

fn dec_mem(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    let load = w & 0x0010_0000 != 0;
    ex.ops.push_src(GPR, ((w >> 16) & 0xf) as u16); // rn
    if !load {
        ex.ops.push_src(GPR, ((w >> 12) & 0xf) as u16); // rd as store data
    }
    if w & 0x0200_0000 != 0 {
        ex.ops.push_src(GPR, (w & 0xf) as u16); // rm
    } else {
        ex.set(F_IMM, (w & 0xfff) as u64);
    }
    let p = w & 0x0100_0000 != 0;
    let wbit = w & 0x0020_0000 != 0;
    if load {
        ex.ops.push_dest(GPR, ((w >> 12) & 0xf) as u16);
    }
    if wbit || !p {
        ex.ops.push_dest(GPR, ((w >> 16) & 0xf) as u16); // base writeback
    }
    Ok(())
}

/// Shared effective-address computation for word/byte transfers.
fn ev_mem(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if !check_cond(ex) {
        return Ok(());
    }
    let w = ex.header.instr_bits;
    let load = w & 0x0010_0000 != 0;
    let base = ex.get(F_SRC1) & M32;
    let offset = if w & 0x0200_0000 != 0 {
        let rm_val = if load { ex.get(F_SRC2) } else { ex.get(F_SRC3) };
        let kind = (w >> 5) & 3;
        let amount = (w >> 7) & 0x1f;
        let c_in = ex.read_reg(CPSR.0, 0) & flags::C != 0;
        let (v, _) = shift_compute(kind, rm_val, amount, false, c_in);
        v
    } else {
        ex.get(F_IMM)
    };
    let up = w & 0x0080_0000 != 0;
    let indexed = if up { base.wrapping_add(offset) } else { base.wrapping_sub(offset) } & M32;
    let p = w & 0x0100_0000 != 0;
    let wbit = w & 0x0020_0000 != 0;
    let ea = if p { indexed } else { base };
    ex.set(F_EFF_ADDR, ea);
    if wbit || !p {
        if load {
            ex.set(F_DEST2, indexed);
        } else {
            ex.set(F_DEST1, indexed);
        }
    }
    Ok(())
}

macro_rules! mem_action {
    ($($fname:ident = ($size:expr, $signed:expr, $load:expr);)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            if ex.get(F_COND) == 0 {
                return Ok(());
            }
            if $load {
                let v = ex.load(ex.get(F_EFF_ADDR), $size, $signed)? & M32;
                ex.set(F_MEM_DATA, v);
                ex.set(F_DEST1, v);
            } else {
                let v = ex.get(F_SRC2) & M32;
                ex.set(F_MEM_DATA, v);
                ex.store(ex.get(F_EFF_ADDR), $size, v)?;
            }
            Ok(())
        })*
    };
}

mem_action! {
    mem_ldr = (4, false, true);
    mem_ldrb = (1, false, true);
    mem_ldrh = (2, false, true);
    mem_ldrsb = (1, true, true);
    mem_ldrsh = (2, true, true);
    mem_str = (4, false, false);
    mem_strb = (1, false, false);
    mem_strh = (2, false, false);
}

/// Halfword/signed transfers: different offset encoding (split imm8 or rm).
fn dec_memh(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    let load = w & 0x0010_0000 != 0;
    ex.ops.push_src(GPR, ((w >> 16) & 0xf) as u16);
    if !load {
        ex.ops.push_src(GPR, ((w >> 12) & 0xf) as u16);
    }
    if w & 0x0040_0000 != 0 {
        ex.set(F_IMM, (((w >> 4) & 0xf0) | (w & 0xf)) as u64);
    } else {
        ex.ops.push_src(GPR, (w & 0xf) as u16);
    }
    let p = w & 0x0100_0000 != 0;
    let wbit = w & 0x0020_0000 != 0;
    if load {
        ex.ops.push_dest(GPR, ((w >> 12) & 0xf) as u16);
    }
    if wbit || !p {
        ex.ops.push_dest(GPR, ((w >> 16) & 0xf) as u16);
    }
    Ok(())
}

fn ev_memh(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if !check_cond(ex) {
        return Ok(());
    }
    let w = ex.header.instr_bits;
    let load = w & 0x0010_0000 != 0;
    let base = ex.get(F_SRC1) & M32;
    let offset = if w & 0x0040_0000 != 0 {
        ex.get(F_IMM)
    } else if load {
        ex.get(F_SRC2) & M32
    } else {
        ex.get(F_SRC3) & M32
    };
    let up = w & 0x0080_0000 != 0;
    let indexed = if up { base.wrapping_add(offset) } else { base.wrapping_sub(offset) } & M32;
    let p = w & 0x0100_0000 != 0;
    let wbit = w & 0x0020_0000 != 0;
    ex.set(F_EFF_ADDR, if p { indexed } else { base });
    if wbit || !p {
        if load {
            ex.set(F_DEST2, indexed);
        } else {
            ex.set(F_DEST1, indexed);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Branches and system calls
// ---------------------------------------------------------------------

fn dec_b(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    let off = ((w & 0x00ff_ffff) << 8) as i32 >> 6; // sign-extend, times 4
    ex.set(F_IMM, off as i64 as u64);
    if w & 0x0100_0000 != 0 {
        ex.ops.push_dest(GPR, 14); // bl links into lr
    }
    Ok(())
}

fn ev_b(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if !check_cond(ex) {
        ex.branch_not_taken();
        return Ok(());
    }
    let w = ex.header.instr_bits;
    if w & 0x0100_0000 != 0 {
        ex.set(F_DEST1, ex.header.pc.wrapping_add(4) & M32);
    }
    let target = ex.header.pc.wrapping_add(8).wrapping_add(ex.get(F_IMM)) & M32;
    ex.take_branch(target);
    Ok(())
}

fn dec_bx(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    ex.ops.push_src(GPR, (w & 0xf) as u16);
    Ok(())
}

fn ev_bx(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if !check_cond(ex) {
        ex.branch_not_taken();
        return Ok(());
    }
    // No Thumb support: force ARM alignment.
    let target = ex.get(F_SRC1) & M32 & !3;
    ex.take_branch(target);
    Ok(())
}

fn dec_swi(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.set(F_ARM_CC, (w >> 28) as u64 & 0xf);
    // LIS OS ABI on ARM: r7 = number, r0/r1 = arguments, result in r0.
    ex.ops.push_src(GPR, 7);
    ex.ops.push_src(GPR, 0);
    ex.ops.push_src(GPR, 1);
    ex.ops.push_dest(GPR, 0);
    Ok(())
}

fn ev_swi(ex: &mut Exec<'_>) -> Result<(), Fault> {
    check_cond(ex);
    Ok(())
}

fn ex_swi(ex: &mut Exec<'_>) -> Result<(), Fault> {
    if ex.get(F_COND) == 0 {
        return Ok(());
    }
    let ret = ex.syscall(ex.get(F_SRC1), ex.get(F_SRC2), ex.get(F_SRC3))?;
    ex.set(F_DEST1, ret & M32);
    ex.write_reg(GPR.0, 0, ret & M32);
    Ok(())
}

// ---------------------------------------------------------------------
// The instruction table
// ---------------------------------------------------------------------

const RN: OperandSpec = OperandSpec { name: "rn", dir: OperandDir::Src, class: GPR };
const RM: OperandSpec = OperandSpec { name: "rm", dir: OperandDir::Src, class: GPR };
const RS: OperandSpec = OperandSpec { name: "rs", dir: OperandDir::Src, class: GPR };
const RD: OperandSpec = OperandSpec { name: "rd", dir: OperandDir::Dest, class: GPR };
const FLAGS_D: OperandSpec = OperandSpec { name: "cpsr", dir: OperandDir::Dest, class: CPSR };

const OPS_DP: &[OperandSpec] = &[RN, RM, RS, RD, FLAGS_D];
const OPS_MEM: &[OperandSpec] = &[RN, RM, RD];
const OPS_B: &[OperandSpec] = &[RD];
const OPS_SWI: &[OperandSpec] = &[RN, RD];

/// Data-processing encoding mask: bits 27:26 plus the opcode field. Bit 25
/// (immediate) and the shift fields stay dynamic so one definition covers
/// all three forms.
pub const DP_MASK: u32 = 0x0de0_0000;

/// Builds data-processing match bits for `opcode`.
pub const fn dp_bits(opcode: u32) -> u32 {
    opcode << 21
}

macro_rules! dp_inst {
    ($name:literal, $opcode:expr, $ev:ident) => {
        dp_inst!($name, $opcode, $ev, DP_MASK, dp_bits($opcode))
    };
    ($name:literal, $opcode:expr, $ev:ident, $mask:expr, $bits:expr) => {
        InstDef {
            name: $name,
            class: InstClass::Alu,
            mask: $mask,
            bits: $bits,
            operands: OPS_DP,
            actions: step_actions! {
                decode: dec_dp,
                operand_fetch: generic_operand_fetch,
                evaluate: $ev,
                writeback: generic_writeback,
            },
            extra_flows: ARM_FLOWS,
        }
    };
}

macro_rules! mem_inst {
    ($name:literal, $class:ident, $mask:expr, $bits:expr, $dec:ident, $ev:ident, $mem:ident) => {
        InstDef {
            name: $name,
            class: InstClass::$class,
            mask: $mask,
            bits: $bits,
            operands: OPS_MEM,
            actions: step_actions! {
                decode: $dec,
                operand_fetch: generic_operand_fetch,
                evaluate: $ev,
                memory: $mem,
                writeback: generic_writeback,
            },
            extra_flows: ARM_FLOWS,
        }
    };
}

/// Every instruction of the ARM description, in decode-priority order (the
/// specific bit patterns of the `000` space come before data processing).
pub const INSTS: &[InstDef] = &[
    InstDef {
        name: "swi",
        class: InstClass::Syscall,
        mask: 0x0f00_0000,
        bits: 0x0f00_0000,
        operands: OPS_SWI,
        actions: step_actions! {
            decode: dec_swi,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_swi,
            exception: ex_swi,
        },
        extra_flows: ARM_FLOWS,
    },
    InstDef {
        name: "bx",
        class: InstClass::Jump,
        mask: 0x0fff_fff0,
        bits: 0x012f_ff10,
        operands: &[RM],
        actions: step_actions! {
            decode: dec_bx,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_bx,
        },
        extra_flows: ARM_FLOWS,
    },
    InstDef {
        name: "clz",
        class: InstClass::Alu,
        mask: 0x0fff_0ff0,
        bits: 0x016f_0f10,
        operands: &[RM, RD],
        actions: step_actions! {
            decode: dec_clz,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_clz,
            writeback: generic_writeback,
        },
        extra_flows: ARM_FLOWS,
    },
    InstDef {
        name: "mul",
        class: InstClass::Alu,
        mask: 0x0fe0_00f0,
        bits: 0x0000_0090,
        operands: &[RM, RS, RD, FLAGS_D],
        actions: step_actions! {
            decode: dec_mul,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_mul,
            writeback: generic_writeback,
        },
        extra_flows: ARM_FLOWS,
    },
    InstDef {
        name: "mla",
        class: InstClass::Alu,
        mask: 0x0fe0_00f0,
        bits: 0x0020_0090,
        operands: &[RM, RS, RN, RD, FLAGS_D],
        actions: step_actions! {
            decode: dec_mul,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_mul,
            writeback: generic_writeback,
        },
        extra_flows: ARM_FLOWS,
    },
    // Halfword and signed transfers (the 1xx1 pattern of the 000 space).
    mem_inst!("strh", Store, 0x0e10_00f0, 0x0000_00b0, dec_memh, ev_memh, mem_strh),
    mem_inst!("ldrh", Load, 0x0e10_00f0, 0x0010_00b0, dec_memh, ev_memh, mem_ldrh),
    mem_inst!("ldrsb", Load, 0x0e10_00f0, 0x0010_00d0, dec_memh, ev_memh, mem_ldrsb),
    mem_inst!("ldrsh", Load, 0x0e10_00f0, 0x0010_00f0, dec_memh, ev_memh, mem_ldrsh),
    // Word/byte transfers.
    mem_inst!("str", Store, 0x0c50_0000, 0x0400_0000, dec_mem, ev_mem, mem_str),
    mem_inst!("ldr", Load, 0x0c50_0000, 0x0410_0000, dec_mem, ev_mem, mem_ldr),
    mem_inst!("strb", Store, 0x0c50_0000, 0x0440_0000, dec_mem, ev_mem, mem_strb),
    mem_inst!("ldrb", Load, 0x0c50_0000, 0x0450_0000, dec_mem, ev_mem, mem_ldrb),
    // Branches.
    InstDef {
        name: "b",
        class: InstClass::Branch,
        mask: 0x0f00_0000,
        bits: 0x0a00_0000,
        operands: &[],
        actions: step_actions! {
            decode: dec_b,
            evaluate: ev_b,
        },
        extra_flows: ARM_FLOWS,
    },
    InstDef {
        name: "bl",
        class: InstClass::Jump,
        mask: 0x0f00_0000,
        bits: 0x0b00_0000,
        operands: OPS_B,
        actions: step_actions! {
            decode: dec_b,
            evaluate: ev_b,
            writeback: generic_writeback,
        },
        extra_flows: ARM_FLOWS,
    },
    // Data processing (all three forms each).
    dp_inst!("and", 0x0, ev_and),
    dp_inst!("eor", 0x1, ev_eor),
    dp_inst!("sub", 0x2, ev_sub),
    dp_inst!("rsb", 0x3, ev_rsb),
    dp_inst!("add", 0x4, ev_add),
    dp_inst!("adc", 0x5, ev_adc),
    dp_inst!("sbc", 0x6, ev_sbc),
    dp_inst!("rsc", 0x7, ev_rsc),
    dp_inst!("tst", 0x8, ev_tst, DP_MASK | 0x0010_0000, dp_bits(0x8) | 0x0010_0000),
    dp_inst!("teq", 0x9, ev_teq, DP_MASK | 0x0010_0000, dp_bits(0x9) | 0x0010_0000),
    dp_inst!("cmp", 0xa, ev_cmp, DP_MASK | 0x0010_0000, dp_bits(0xa) | 0x0010_0000),
    dp_inst!("cmn", 0xb, ev_cmn, DP_MASK | 0x0010_0000, dp_bits(0xb) | 0x0010_0000),
    dp_inst!("orr", 0xc, ev_orr),
    dp_inst!("mov", 0xd, ev_mov),
    dp_inst!("bic", 0xe, ev_bic),
    dp_inst!("mvn", 0xf, ev_mvn),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_table() {
        let c = flags::C;
        let z = flags::Z;
        assert!(cond_pass(0x0, z)); // eq
        assert!(!cond_pass(0x0, 0));
        assert!(cond_pass(0x1, 0)); // ne
        assert!(cond_pass(0x2, c)); // cs
        assert!(cond_pass(0x8, c)); // hi
        assert!(!cond_pass(0x8, c | z));
        assert!(cond_pass(0xa, 0)); // ge with n==v==0
        assert!(cond_pass(0xa, flags::N | flags::V));
        assert!(!cond_pass(0xb, 0)); // lt
        assert!(cond_pass(0xe, 0)); // al
        assert!(!cond_pass(0xf, 0)); // nv
    }

    #[test]
    fn shifter_lsl_lsr() {
        // LSL #0 keeps value and carry.
        assert_eq!(shift_compute(0, 5, 0, false, true), (5, true));
        assert_eq!(shift_compute(0, 1, 4, false, false), (16, false));
        // Carry out of LSL is the last bit shifted out.
        assert_eq!(shift_compute(0, 0x8000_0001, 1, false, false), (2, true));
        // LSR #0 immediate means LSR #32.
        assert_eq!(shift_compute(1, 0x8000_0000, 0, false, false), (0, true));
        // LSR #0 from register keeps value.
        assert_eq!(shift_compute(1, 7, 0, true, true), (7, true));
        // LSL by register >= 33 gives 0 with no carry.
        assert_eq!(shift_compute(0, 1, 40, true, true), (0, false));
    }

    #[test]
    fn shifter_asr_ror() {
        assert_eq!(shift_compute(2, 0x8000_0000, 1, false, false), (0xc000_0000, false));
        // ASR #0 immediate = ASR #32 of a negative value.
        assert_eq!(shift_compute(2, 0x8000_0000, 0, false, false), (M32, true));
        // ROR #4.
        assert_eq!(shift_compute(3, 0xf, 4, false, false), (0xf000_0000, true));
        // RRX: carry in becomes bit 31, bit 0 becomes carry out.
        assert_eq!(shift_compute(3, 1, 0, false, true), (0x8000_0000, true));
        // ROR by register multiple of 32 keeps value, carry = bit31.
        assert_eq!(shift_compute(3, 0x8000_0000, 32, true, false), (0x8000_0000, true));
    }

    #[test]
    fn instruction_count() {
        assert_eq!(INSTS.len(), 31);
    }

    #[test]
    fn dp_shape_table() {
        assert_eq!(dp_shape(13), (false, true)); // mov
        assert_eq!(dp_shape(10), (true, false)); // cmp
        assert_eq!(dp_shape(4), (true, true)); // add
    }
}
