//! The ARM disassembler — derived from the same instruction table.

use crate::regs::reg_name;
use crate::semantics::INSTS;

const COND_NAMES: &[&str] =
    &["eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc", "hi", "ls", "ge", "lt", "gt", "le", "", "nv"];

fn cond(word: u32) -> &'static str {
    COND_NAMES[(word >> 28) as usize]
}

fn shifter(word: u32) -> String {
    if word & 0x0200_0000 != 0 {
        let rot = ((word >> 8) & 0xf) * 2;
        format!("#{}", (word & 0xff).rotate_right(rot))
    } else {
        let rm = reg_name((word & 0xf) as u16);
        let kind = ["lsl", "lsr", "asr", "ror"][((word >> 5) & 3) as usize];
        if word & 0x10 != 0 {
            format!("{rm}, {kind} {}", reg_name(((word >> 8) & 0xf) as u16))
        } else {
            let amount = (word >> 7) & 0x1f;
            if amount == 0 && kind == "lsl" {
                rm
            } else {
                format!("{rm}, {kind} #{amount}")
            }
        }
    }
}

/// Renders one instruction word as assembly.
pub fn disasm(word: u32, pc: u64) -> String {
    let Some(def) = INSTS.iter().find(|d| d.matches(word)) else {
        return format!(".word {word:#010x}");
    };
    let c = cond(word);
    let rd = reg_name(((word >> 12) & 0xf) as u16);
    let rn = reg_name(((word >> 16) & 0xf) as u16);
    let rm = reg_name((word & 0xf) as u16);
    match def.name {
        "swi" => format!("swi{c} {}", word & 0x00ff_ffff),
        "bx" => format!("bx{c} {rm}"),
        "clz" => format!("clz{c} {rd}, {rm}"),
        "mul" => {
            let s = if word & 0x0010_0000 != 0 { "s" } else { "" };
            format!("mul{c}{s} {rn}, {rm}, {}", reg_name(((word >> 8) & 0xf) as u16))
        }
        "mla" => {
            let s = if word & 0x0010_0000 != 0 { "s" } else { "" };
            format!("mla{c}{s} {rn}, {rm}, {}, {rd}", reg_name(((word >> 8) & 0xf) as u16))
        }
        "b" | "bl" => {
            let off = ((word & 0x00ff_ffff) << 8) as i32 >> 6;
            let target = pc.wrapping_add(8).wrapping_add(off as i64 as u64) & 0xffff_ffff;
            format!("{}{c} {target:#x}", def.name)
        }
        "ldr" | "str" | "ldrb" | "strb" => {
            let u = if word & 0x0080_0000 != 0 || word & 0xfff == 0 { "" } else { "-" };
            let wb = if word & 0x0020_0000 != 0 { "!" } else { "" };
            let p = word & 0x0100_0000 != 0;
            let off = if word & 0x0200_0000 != 0 {
                format!("{u}{}", shifter(word & !0x0200_0000))
            } else {
                format!("#{u}{}", word & 0xfff)
            };
            if p {
                format!("{}{c} {rd}, [{rn}, {off}]{wb}", def.name)
            } else {
                format!("{}{c} {rd}, [{rn}], {off}", def.name)
            }
        }
        "ldrh" | "strh" | "ldrsb" | "ldrsh" => {
            let imm8 = ((word >> 4) & 0xf0) | (word & 0xf);
            let reg_form = word & 0x0040_0000 == 0;
            let u = if word & 0x0080_0000 != 0 || (!reg_form && imm8 == 0) { "" } else { "-" };
            let p = word & 0x0100_0000 != 0;
            let off = if word & 0x0040_0000 != 0 {
                format!("#{u}{}", ((word >> 4) & 0xf0) | (word & 0xf))
            } else {
                format!("{u}{rm}")
            };
            if p {
                format!("{}{c} {rd}, [{rn}, {off}]", def.name)
            } else {
                format!("{}{c} {rd}, [{rn}], {off}", def.name)
            }
        }
        // data processing
        name => {
            let s = if word & 0x0010_0000 != 0 { "s" } else { "" };
            let sh = shifter(word);
            match name {
                "mov" | "mvn" => format!("{name}{c}{s} {rd}, {sh}"),
                "tst" | "teq" | "cmp" | "cmn" => format!("{name}{c} {rn}, {sh}"),
                _ => format!("{name}{c}{s} {rd}, {rn}, {sh}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ArmAsm;
    use lis_asm::assemble;

    fn round(line: &str) -> String {
        let img = assemble(&ArmAsm, line).unwrap();
        let w = u32::from_le_bytes(img.sections[0].bytes[0..4].try_into().unwrap());
        disasm(w, 0x1000)
    }

    #[test]
    fn round_trips() {
        assert_eq!(round("add r0, r1, r2"), "add r0, r1, r2");
        assert_eq!(round("addeqs r0, r1, #1"), "addeqs r0, r1, #1");
        assert_eq!(round("mov r3, r4, lsl #2"), "mov r3, r4, lsl #2");
        assert_eq!(round("cmp r1, #255"), "cmp r1, #255");
        assert_eq!(round("ldr r0, [r1, #4]"), "ldr r0, [r1, #4]");
        assert_eq!(round("str r0, [r1], #8"), "str r0, [r1], #8");
        assert_eq!(round("ldrh r0, [r1, #6]"), "ldrh r0, [r1, #6]");
        assert_eq!(round("x: b x"), "b 0x1000");
        assert_eq!(round("bx lr"), "bx lr");
        assert_eq!(round("swi 3"), "swi 3");
        assert_eq!(round("mul r1, r2, r3"), "mul r1, r2, r3");
    }
}
