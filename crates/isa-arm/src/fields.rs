//! ARM-specific fields.
//!
//! The paper explicitly calls out "the shifter output for a processor
//! implementing the ARM instruction set" as the kind of intermediate value a
//! timing simulator may want; these fields make it (and the condition
//! machinery) part of the published informational detail.

use lis_core::{FieldDesc, FieldId};

/// The condition code extracted from bits 31:28 at decode.
pub const F_ARM_CC: FieldId = FieldId(16);
/// The shifter operand value computed at evaluate.
pub const F_SHIFT_OUT: FieldId = FieldId(17);
/// The shifter carry-out computed at evaluate.
pub const F_SHIFT_CARRY: FieldId = FieldId(18);

/// Descriptors for the ARM-specific fields.
pub const ARM_FIELDS: &[FieldDesc] = &[
    FieldDesc { id: F_ARM_CC, name: "arm_cc", doc: "decoded condition code" },
    FieldDesc { id: F_SHIFT_OUT, name: "shift_out", doc: "shifter operand value" },
    FieldDesc { id: F_SHIFT_CARRY, name: "shift_carry", doc: "shifter carry-out" },
];
