//! # lis-isa-arm — single specification of the ARM v5 instruction set
//!
//! A user-mode, integer-only subset of ARM v5 (the second evaluated ISA;
//! the paper also excludes ARM floating point): all sixteen data-processing
//! operations in immediate/shift-by-immediate/shift-by-register forms with
//! the S bit, `mul`/`mla`, `clz`, word/byte/halfword/signed loads and stores
//! with pre/post-indexed addressing and writeback, `b`/`bl`/`bx`, and `swi`.
//! Every instruction is conditional; the shifter operand — the intermediate
//! value the paper calls out for ARM — is published as the `shift_out` /
//! `shift_carry` fields.
//!
//! Subset deviations (documented): no Thumb, no `ldm`/`stm`, data-processing
//! writes to `pc` are rejected by the assembler, and unaligned word accesses
//! fault rather than rotate.
//!
//! System calls use the LIS OS ABI: number in `r7`, arguments in `r0`/`r1`,
//! result in `r0`, invoked by `swi`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod disasm;
pub mod fields;
pub mod regs;
pub mod semantics;

use lis_core::{count_lines, IsaSpec, SpecStats};
use lis_mem::Endian;

pub use asm::ArmAsm;

static SPEC: IsaSpec = IsaSpec {
    name: "arm",
    word_bits: 32,
    endian: Endian::Little,
    insts: semantics::INSTS,
    reg_classes: regs::REG_CLASSES,
    isa_fields: fields::ARM_FIELDS,
    disasm: disasm::disasm,
    pc_mask: 0xffff_fffc,
    sp_gpr: 13,
};

/// Returns the ARM ISA specification.
pub fn spec() -> &'static IsaSpec {
    &SPEC
}

/// Assembles ARM source into a loadable image.
///
/// # Errors
///
/// Returns the first assembly error with its line number.
///
/// # Examples
///
/// ```
/// let image = lis_isa_arm::assemble("_start: add r0, r1, r2\n")?;
/// assert_eq!(image.entry, 0x1000);
/// # Ok::<(), lis_asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<lis_mem::Image, lis_asm::AsmError> {
    lis_asm::assemble(&ArmAsm, src)
}

/// Mechanical Table I statistics for the ARM description.
pub fn spec_stats() -> SpecStats {
    let isa = count_lines(include_str!("semantics.rs"))
        .add(count_lines(include_str!("regs.rs")))
        .add(count_lines(include_str!("fields.rs")));
    let tooling = count_lines(include_str!("asm.rs")).add(count_lines(include_str!("disasm.rs")));
    SpecStats {
        isa: "arm",
        isa_description_lines: isa.code,
        os_support_lines: 0,
        tooling_lines: tooling.code,
        num_instructions: semantics::INSTS.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates() {
        spec().validate().unwrap();
    }

    #[test]
    fn stats_are_plausible() {
        let s = spec_stats();
        assert_eq!(s.num_instructions, 31);
        assert!(s.isa_description_lines > 300);
    }
}
