//! The ARM assembler — encodings derived from the instruction table.
//!
//! Classic (pre-UAL) syntax: `add r0, r1, r2, lsl #3`, `ldreqb r0, [r1, #4]!`,
//! `str r2, [r3], #8`, `bl label`, `swi 0`. Condition suffixes follow the
//! base mnemonic, then `s` (data processing) — e.g. `addeqs`, `ldrne`,
//! `ldrneb`. `ldr rd, label` assembles a PC-relative literal load.

use crate::regs::parse_reg;
use crate::semantics::dp_bits;
use lis_asm::{EncodeCtx, IsaAssembler, Operand};
use lis_mem::Endian;

/// The ARM [`IsaAssembler`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ArmAsm;

const CONDS: &[(&str, u32)] = &[
    ("eq", 0x0),
    ("ne", 0x1),
    ("cs", 0x2),
    ("hs", 0x2),
    ("cc", 0x3),
    ("lo", 0x3),
    ("mi", 0x4),
    ("pl", 0x5),
    ("vs", 0x6),
    ("vc", 0x7),
    ("hi", 0x8),
    ("ls", 0x9),
    ("ge", 0xa),
    ("lt", 0xb),
    ("gt", 0xc),
    ("le", 0xd),
    ("al", 0xe),
];

/// Base mnemonics, longest-first so suffix parsing is unambiguous.
const BASES: &[&str] = &[
    "ldrsb", "ldrsh", "ldrh", "ldrb", "strh", "strb", "ldr", "str", "mla", "mul", "clz", "swi",
    "and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc", "tst", "teq", "cmp", "cmn", "orr",
    "mov", "bic", "mvn", "nop", "bx", "bl", "b",
];

/// Splits a mnemonic into `(base, cond, s_flag)`.
fn split_mnemonic(mn: &str) -> Option<(&'static str, u32, bool)> {
    for &base in BASES {
        let Some(mut rest) = mn.strip_prefix(base) else { continue };
        let mut cond = 0xe;
        if rest.len() >= 2 {
            if let Some(&(_, c)) = CONDS.iter().find(|(n, _)| rest.starts_with(n)) {
                cond = c;
                rest = &rest[2..];
            }
        }
        let s = rest == "s";
        if !rest.is_empty() && !s {
            continue;
        }
        // `s` is only meaningful for data-processing and multiply.
        if s && !matches!(
            base,
            "and"
                | "eor"
                | "sub"
                | "rsb"
                | "add"
                | "adc"
                | "sbc"
                | "rsc"
                | "orr"
                | "mov"
                | "bic"
                | "mvn"
                | "mul"
                | "mla"
        ) {
            continue;
        }
        return Some((base, cond, s));
    }
    None
}

fn reg(op: &Operand, what: &str) -> Result<u32, String> {
    op.reg()
        .and_then(parse_reg)
        .map(u32::from)
        .ok_or_else(|| format!("expected register for {what}"))
}

/// Encodes a data-processing immediate: finds a rotation such that
/// `imm8 ror (2*rot) == val`.
fn encode_imm(val: u32) -> Option<u32> {
    for rot in 0..16u32 {
        let v = val.rotate_left(rot * 2);
        if v <= 0xff {
            return Some((rot << 8) | v);
        }
    }
    None
}

const SHIFT_KINDS: &[(&str, u32)] = &[("lsl", 0), ("lsr", 1), ("asr", 2), ("ror", 3)];

/// Encodes the register-form shifter tail: `rm [, shift]`.
fn encode_reg_shift(rm: &Operand, shift: Option<&Operand>) -> Result<u32, String> {
    let rm = reg(rm, "rm")?;
    let Some(shift) = shift else { return Ok(rm) };
    let Operand::Pair { key, arg } = shift else {
        return Err("expected a shift specifier (`lsl #n`, ...)".into());
    };
    let kind = SHIFT_KINDS
        .iter()
        .find(|(n, _)| n == key)
        .map(|(_, k)| *k)
        .ok_or_else(|| format!("unknown shift `{key}`"))?;
    match &**arg {
        Operand::Imm(n) => {
            // `lsr #32` and `asr #32` are architectural and encode as 0.
            let n = if *n == 32 && (kind == 1 || kind == 2) { 0 } else { *n };
            if !(0..=31).contains(&n) {
                return Err(format!("shift amount {n} out of range"));
            }
            Ok(((n as u32) << 7) | (kind << 5) | rm)
        }
        Operand::Reg(rs) => {
            let rs = parse_reg(rs).ok_or("bad shift register")? as u32;
            Ok((rs << 8) | (kind << 5) | 0x10 | rm)
        }
        _ => Err("shift argument must be an immediate or register".into()),
    }
}

/// Encodes the full shifter operand (operands after rd/rn).
fn encode_shifter(ops: &[&Operand]) -> Result<u32, String> {
    match ops {
        [Operand::Imm(v)] => {
            let enc = encode_imm(*v as u32)
                .ok_or_else(|| format!("immediate {v:#x} not encodable as imm8 ror n"))?;
            Ok(0x0200_0000 | enc)
        }
        [rm] => encode_reg_shift(rm, None),
        [rm, sh] => encode_reg_shift(rm, Some(sh)),
        _ => Err("too many shifter operands".into()),
    }
}

/// Encodes the addressing mode of a word/byte transfer into `(P,U,W,I,offset bits, rn)`.
fn encode_addr(ops: &[Operand], addr: u64, halfword: bool) -> Result<(u32, u32), String> {
    let enc_off_imm = |off: i64| -> Result<(u32, u32), String> {
        let (u, mag) = if off < 0 { (0u32, (-off) as u32) } else { (1, off as u32) };
        if halfword {
            if mag > 0xff {
                return Err(format!("halfword offset {off} out of range"));
            }
            Ok((u << 23 | 0x0040_0000, ((mag & 0xf0) << 4) | (mag & 0xf)))
        } else {
            if mag > 0xfff {
                return Err(format!("offset {off} out of range"));
            }
            Ok((u << 23, mag))
        }
    };
    match ops {
        // ldr rd, label  ->  pc-relative
        [_, Operand::Imm(target)] => {
            let off = *target - (addr as i64 + 8);
            let (ubits, obits) = enc_off_imm(off)?;
            Ok((0x0100_0000 | ubits | (15 << 16), obits))
        }
        [_, Operand::Mem { items, writeback }] => {
            let w = if *writeback { 0x0020_0000 } else { 0 };
            match items.as_slice() {
                [Operand::Reg(rn)] => {
                    let rn = parse_reg(rn).ok_or("bad base register")? as u32;
                    let (ubits, obits) = enc_off_imm(0)?;
                    Ok((0x0100_0000 | ubits | w | (rn << 16), obits))
                }
                [Operand::Reg(rn), Operand::Imm(off)] => {
                    let rn = parse_reg(rn).ok_or("bad base register")? as u32;
                    let (ubits, obits) = enc_off_imm(*off)?;
                    Ok((0x0100_0000 | ubits | w | (rn << 16), obits))
                }
                [Operand::Reg(rn), rest @ ..] => {
                    let rn = parse_reg(rn).ok_or("bad base register")? as u32;
                    if halfword {
                        let rm = reg(&rest[0], "rm")?;
                        if rest.len() > 1 {
                            return Err("halfword transfers take no shift".into());
                        }
                        Ok((0x0180_0000 | w | (rn << 16), rm))
                    } else {
                        let refs: Vec<&Operand> = rest.iter().collect();
                        let sh = encode_reg_shift(refs[0], refs.get(1).copied())?;
                        Ok((0x0380_0000 | w | (rn << 16), sh))
                    }
                }
                _ => Err("bad addressing mode".into()),
            }
        }
        // post-indexed: ldr rd, [rn], #off  or  [rn], rm
        [_, Operand::Mem { items, writeback: false }, post] if items.len() == 1 => {
            let Operand::Reg(rn) = &items[0] else { return Err("bad base register".into()) };
            let rn = parse_reg(rn).ok_or("bad base register")? as u32;
            match post {
                Operand::Imm(off) => {
                    let (ubits, obits) = enc_off_imm(*off)?;
                    Ok((ubits | (rn << 16), obits))
                }
                Operand::Reg(_) => {
                    let rm = reg(post, "rm")?;
                    if halfword {
                        Ok((0x0080_0000 | (rn << 16), rm))
                    } else {
                        Ok((0x0280_0000 | (rn << 16), rm))
                    }
                }
                _ => Err("bad post-index operand".into()),
            }
        }
        _ => Err("bad addressing mode".into()),
    }
}

impl IsaAssembler for ArmAsm {
    fn name(&self) -> &'static str {
        "arm"
    }

    fn endian(&self) -> Endian {
        Endian::Little
    }

    fn is_reg(&self, name: &str) -> bool {
        parse_reg(name).is_some()
    }

    fn encode(&self, mn: &str, ops: &[Operand], ctx: &EncodeCtx<'_>) -> Result<u32, String> {
        let (base, cond, s) =
            split_mnemonic(mn).ok_or_else(|| format!("unknown mnemonic `{mn}`"))?;
        let cond_bits = cond << 28;
        let s_bit = if s { 0x0010_0000 } else { 0 };

        match base {
            "nop" => return Ok(cond_bits | dp_bits(0xd)), // mov r0, r0
            "swi" => {
                let imm = ops.first().and_then(|o| o.imm()).unwrap_or(0) as u32;
                return Ok(cond_bits | 0x0f00_0000 | (imm & 0x00ff_ffff));
            }
            "bx" => {
                let rm = reg(ops.first().ok_or("bx needs a register")?, "rm")?;
                return Ok(cond_bits | 0x012f_ff10 | rm);
            }
            "b" | "bl" => {
                let target =
                    ops.first().and_then(|o| o.imm()).ok_or("branch needs a target address")?;
                let off = target - (ctx.addr as i64 + 8);
                if off % 4 != 0 {
                    return Err("branch target not word-aligned".into());
                }
                let words = off / 4;
                if !(-(1 << 23)..(1 << 23)).contains(&words) {
                    return Err(format!("branch offset {off} out of range"));
                }
                let l = if base == "bl" { 0x0100_0000 } else { 0 };
                return Ok(cond_bits | 0x0a00_0000 | l | (words as u32 & 0x00ff_ffff));
            }
            "mul" => {
                let [rd, rm, rs] = ops else { return Err("mul needs `rd, rm, rs`".into()) };
                return Ok(cond_bits
                    | s_bit
                    | 0x0000_0090
                    | (reg(rd, "rd")? << 16)
                    | (reg(rs, "rs")? << 8)
                    | reg(rm, "rm")?);
            }
            "mla" => {
                let [rd, rm, rs, rn] = ops else {
                    return Err("mla needs `rd, rm, rs, rn`".into());
                };
                return Ok(cond_bits
                    | s_bit
                    | 0x0020_0090
                    | (reg(rd, "rd")? << 16)
                    | (reg(rn, "rn")? << 12)
                    | (reg(rs, "rs")? << 8)
                    | reg(rm, "rm")?);
            }
            "clz" => {
                let [rd, rm] = ops else { return Err("clz needs `rd, rm`".into()) };
                return Ok(cond_bits | 0x016f_0f10 | (reg(rd, "rd")? << 12) | reg(rm, "rm")?);
            }
            "ldr" | "str" | "ldrb" | "strb" | "ldrh" | "strh" | "ldrsb" | "ldrsh" => {
                if ops.len() < 2 {
                    return Err(format!("{base} needs `rd, <address>`"));
                }
                let rd = reg(&ops[0], "rd")?;
                let halfword = matches!(base, "ldrh" | "strh" | "ldrsb" | "ldrsh");
                let (mode, off) = encode_addr(ops, ctx.addr, halfword)?;
                let l = if base.starts_with("ldr") { 0x0010_0000 } else { 0 };
                let class = if halfword {
                    match base {
                        "strh" | "ldrh" => 0xb0,
                        "ldrsb" => 0xd0,
                        _ => 0xf0,
                    }
                } else {
                    let b = if base.ends_with('b') { 0x0040_0000 } else { 0 };
                    0x0400_0000 | b
                };
                return Ok(cond_bits | class | l | mode | (rd << 12) | off);
            }
            _ => {}
        }

        // Data processing.
        let opcode = match base {
            "and" => 0x0,
            "eor" => 0x1,
            "sub" => 0x2,
            "rsb" => 0x3,
            "add" => 0x4,
            "adc" => 0x5,
            "sbc" => 0x6,
            "rsc" => 0x7,
            "tst" => 0x8,
            "teq" => 0x9,
            "cmp" => 0xa,
            "cmn" => 0xb,
            "orr" => 0xc,
            "mov" => 0xd,
            "bic" => 0xe,
            "mvn" => 0xf,
            _ => return Err(format!("unhandled mnemonic `{base}`")),
        };
        let (fixed, shifter_ops): (u32, &[Operand]) = match opcode {
            0xd | 0xf => {
                // mov/mvn rd, <shifter>
                if ops.is_empty() {
                    return Err(format!("{base} needs operands"));
                }
                (reg(&ops[0], "rd")? << 12, &ops[1..])
            }
            0x8..=0xb => {
                // tst/cmp rn, <shifter> — S is implicit.
                if ops.is_empty() {
                    return Err(format!("{base} needs operands"));
                }
                (reg(&ops[0], "rn")? << 16 | 0x0010_0000, &ops[1..])
            }
            _ => {
                if ops.len() < 2 {
                    return Err(format!("{base} needs `rd, rn, <shifter>`"));
                }
                ((reg(&ops[0], "rd")? << 12) | (reg(&ops[1], "rn")? << 16), &ops[2..])
            }
        };
        if matches!(opcode, 0xd | 0xf) && ops[0].reg() == Some("pc") {
            return Err("writing pc with data processing is not supported in this subset".into());
        }
        let refs: Vec<&Operand> = shifter_ops.iter().collect();
        let shifter = encode_shifter(&refs)?;
        Ok(cond_bits | dp_bits(opcode) | s_bit | fixed | shifter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_asm::assemble;

    fn enc(line: &str) -> u32 {
        let img = assemble(&ArmAsm, line).unwrap();
        u32::from_le_bytes(img.sections[0].bytes[0..4].try_into().unwrap())
    }

    #[test]
    fn mnemonic_splitting() {
        assert_eq!(split_mnemonic("add"), Some(("add", 0xe, false)));
        assert_eq!(split_mnemonic("addeq"), Some(("add", 0x0, false)));
        assert_eq!(split_mnemonic("addeqs"), Some(("add", 0x0, true)));
        assert_eq!(split_mnemonic("adds"), Some(("add", 0xe, true)));
        assert_eq!(split_mnemonic("bls"), Some(("b", 0x9, false)));
        assert_eq!(split_mnemonic("bl"), Some(("bl", 0xe, false)));
        assert_eq!(split_mnemonic("ldrneb"), None); // type suffix precedes cond
        assert_eq!(split_mnemonic("ldrbne"), Some(("ldrb", 0x1, false)));
        assert_eq!(split_mnemonic("zzz"), None);
    }

    #[test]
    fn dp_encodings() {
        let w = enc("add r0, r1, r2");
        assert_eq!(w, 0xe081_0002);
        let w = enc("addeqs r0, r1, #1");
        assert_eq!(w, 0x0291_0001);
        let w = enc("mov r3, r4, lsl #2");
        assert_eq!(w, 0xe1a0_3104);
        let w = enc("mov r3, r4, lsl r5");
        assert_eq!(w, 0xe1a0_3514);
        let w = enc("cmp r1, #255");
        assert_eq!(w, 0xe351_00ff);
    }

    #[test]
    fn imm_rotation() {
        assert_eq!(encode_imm(0xff), Some(0xff));
        // 0x101 spans nine bits and no even rotation fits it into eight.
        assert_eq!(encode_imm(0x101), None);
        // Every encodable value round-trips through the hardware decoding.
        for val in [0x0002_0000u32, 0x104, 0xff00_0000, 0x3fc] {
            let e = encode_imm(val).unwrap();
            let rot = (e >> 8) * 2;
            assert_eq!((e & 0xff).rotate_right(rot), val);
        }
        assert!(assemble(&ArmAsm, "mov r0, #0x101").is_err());
    }

    #[test]
    fn mem_encodings() {
        assert_eq!(enc("ldr r0, [r1]"), 0xe591_0000);
        assert_eq!(enc("ldr r0, [r1, #4]"), 0xe591_0004);
        assert_eq!(enc("ldr r0, [r1, #-4]!"), 0xe531_0004);
        assert_eq!(enc("str r0, [r1], #8"), 0xe481_0008);
        assert_eq!(enc("ldr r0, [r1, r2]"), 0xe791_0002);
        assert_eq!(enc("ldr r0, [r1, r2, lsl #2]"), 0xe791_0102);
        assert_eq!(enc("ldrb r0, [r1]"), 0xe5d1_0000);
        // pc-relative literal: the word right after the load sits at
        // pc + 8 - 4, so the offset is -4.
        let w = enc("ldr r0, x\nx: .word 123");
        assert_eq!((w >> 16) & 0xf, 15);
        assert_eq!(w & 0x0080_0000, 0, "offset is negative");
        assert_eq!(w & 0xfff, 4);
    }

    #[test]
    fn halfword_encodings() {
        assert_eq!(enc("ldrh r0, [r1, #6]"), 0xe1d1_00b6);
        assert_eq!(enc("strh r0, [r1]"), 0xe1c1_00b0);
        assert_eq!(enc("ldrsb r0, [r1, #1]"), 0xe1d1_00d1);
        assert_eq!(enc("ldrsh r0, [r1, r2]"), 0xe191_00f2);
    }

    #[test]
    fn branches_and_misc() {
        // b to self: offset -8 -> words -2.
        assert_eq!(enc("x: b x"), 0xeaff_fffe);
        assert_eq!(enc("x: blne x"), 0x1bff_fffe);
        assert_eq!(enc("bx lr"), 0xe12f_ff1e);
        assert_eq!(enc("swi 7"), 0xef00_0007);
        assert_eq!(enc("mul r1, r2, r3"), 0xe001_0392);
        assert_eq!(enc("mla r1, r2, r3, r4"), 0xe021_4392);
        assert_eq!(enc("clz r1, r2"), 0xe16f_1f12);
    }

    #[test]
    fn pc_write_rejected() {
        assert!(assemble(&ArmAsm, "mov pc, lr").is_err());
    }
}
