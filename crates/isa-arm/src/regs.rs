//! ARM register classes and accessors.
//!
//! Two classes: 16 general-purpose registers (`r13`=sp, `r14`=lr, `r15`=pc)
//! and the CPSR. Reading `r15` through the accessor yields `pc + 8`, the
//! architectural value an ARM instruction observes (two instructions ahead
//! because of the classic three-stage pipeline); writing `r15` through a
//! data-processing instruction is not supported in this subset — use `bx`
//! or `mov pc, lr` is rejected by the assembler.

use lis_core::{ArchState, RegBacking, RegClass, RegClassDef};

/// The general-purpose register class.
pub const GPR: RegClass = RegClass(0);
/// The CPSR (flags) register class.
pub const CPSR: RegClass = RegClass(1);

/// Bit positions of the condition flags within the CPSR.
pub mod flags {
    /// Negative.
    pub const N: u64 = 1 << 31;
    /// Zero.
    pub const Z: u64 = 1 << 30;
    /// Carry / not-borrow.
    pub const C: u64 = 1 << 29;
    /// Signed overflow.
    pub const V: u64 = 1 << 28;
}

fn read_gpr(st: &ArchState, idx: u16) -> u64 {
    if idx == 15 {
        (st.pc.wrapping_add(8)) & 0xffff_ffff
    } else {
        st.gpr[idx as usize]
    }
}

fn write_gpr(st: &mut ArchState, idx: u16, val: u64) {
    if idx != 15 {
        st.gpr[idx as usize] = val & 0xffff_ffff;
    }
}

fn read_cpsr(st: &ArchState, _idx: u16) -> u64 {
    st.spr[0]
}

fn write_cpsr(st: &mut ArchState, _idx: u16, val: u64) {
    st.spr[0] = val & 0xf000_0000;
}

/// Register classes of the ARM description. Backings declare the flat-file
/// mapping (`r15` is special: it reads as a PC view and discards writes) so
/// compiled backends can lower ordinary operands to direct accesses.
pub const REG_CLASSES: &[RegClassDef] = &[
    RegClassDef {
        name: "gpr",
        count: 16,
        read: read_gpr,
        write: write_gpr,
        backing: Some(RegBacking::Gpr { special: Some(15), write_mask: 0xffff_ffff }),
    },
    RegClassDef {
        name: "cpsr",
        count: 1,
        read: read_cpsr,
        write: write_cpsr,
        backing: Some(RegBacking::Spr { slot: 0, write_mask: 0xf000_0000 }),
    },
];

/// Parses a register name (already lower-cased).
pub fn parse_reg(name: &str) -> Option<u16> {
    match name {
        "sp" => return Some(13),
        "lr" => return Some(14),
        "pc" => return Some(15),
        "fp" => return Some(11),
        "ip" => return Some(12),
        "sl" => return Some(10),
        _ => {}
    }
    let n = name.strip_prefix('r')?;
    let v = n.parse::<u16>().ok()?;
    (v < 16).then_some(v)
}

/// Canonical display name.
pub fn reg_name(idx: u16) -> String {
    match idx {
        13 => "sp".into(),
        14 => "lr".into(),
        15 => "pc".into(),
        _ => format!("r{idx}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_mem::Endian;

    #[test]
    fn r15_reads_pc_plus_8() {
        let mut st = ArchState::new(Endian::Little);
        st.pc = 0x1000;
        assert_eq!(read_gpr(&st, 15), 0x1008);
        write_gpr(&mut st, 15, 0xdead);
        assert_eq!(st.pc, 0x1000, "write to r15 is discarded in this subset");
    }

    #[test]
    fn gprs_are_32_bit() {
        let mut st = ArchState::new(Endian::Little);
        write_gpr(&mut st, 1, 0x1_2345_6789);
        assert_eq!(read_gpr(&st, 1), 0x2345_6789);
    }

    #[test]
    fn cpsr_keeps_flags_only() {
        let mut st = ArchState::new(Endian::Little);
        write_cpsr(&mut st, 0, 0xffff_ffff);
        assert_eq!(read_cpsr(&st, 0), 0xf000_0000);
    }

    #[test]
    fn names() {
        assert_eq!(parse_reg("sp"), Some(13));
        assert_eq!(parse_reg("r15"), Some(15));
        assert_eq!(parse_reg("r16"), None);
        assert_eq!(reg_name(14), "lr");
        assert_eq!(reg_name(3), "r3");
    }
}
