//! End-to-end Alpha execution tests through the synthesized simulators.

use lis_core::{ONE_ALL, STANDARD_BUILDSETS};
use lis_runtime::Simulator;

fn run(src: &str) -> Simulator {
    let image = lis_isa_alpha::assemble(src).expect("assembles");
    let mut sim = Simulator::new(lis_isa_alpha::spec(), ONE_ALL).unwrap();
    sim.load_program(&image).unwrap();
    sim.run_to_halt(1_000_000).unwrap();
    sim
}

const EXIT0: &str = "
    mov 1, v0        ; EXIT
    mov 0, a0
    callsys
";

#[test]
fn arithmetic_and_literals() {
    let sim = run(&format!(
        "
_start: mov 100, r1
        addq r1, 20, r2       ; 120
        subq r2, r1, r3       ; 20
        mulq r2, r3, r4       ; 2400
        sll r4, 4, r5         ; 38400
        srl r5, 2, r6         ; 9600
        sra r5, 2, r7         ; 9600
        cmplt r3, r2, r8      ; 1
        cmpeq r3, 20, r9      ; 1
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[2], 120);
    assert_eq!(sim.state.gpr[3], 20);
    assert_eq!(sim.state.gpr[4], 2400);
    assert_eq!(sim.state.gpr[5], 38400);
    assert_eq!(sim.state.gpr[6], 9600);
    assert_eq!(sim.state.gpr[7], 9600);
    assert_eq!(sim.state.gpr[8], 1);
    assert_eq!(sim.state.gpr[9], 1);
}

#[test]
fn longword_ops_sign_extend() {
    let sim = run(&format!(
        "
_start: mov 1, r1
        sll r1, 31, r1       ; 0x8000_0000
        addl r1, 0, r2       ; sign-extends to 0xffff..8000_0000
        subl r31, 1, r3      ; -1
        mull r1, 2, r4       ; 0 (low 32 bits)
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[2], 0xffff_ffff_8000_0000);
    assert_eq!(sim.state.gpr[3], u64::MAX);
    assert_eq!(sim.state.gpr[4], 0);
}

#[test]
fn loads_stores_all_widths() {
    let sim = run(&format!(
        "
_start: ldah r1, ha16(buf)(zero)
        lda r1, slo16(buf)(r1)
        mov 0xab, r2
        stb r2, 0(r1)
        mov 0x1234, r3
        stw r3, 2(r1)
        ldah r4, 0x1234(r31)
        lda r4, 0x5678(r4)    ; r4 = 0x12345678
        stl r4, 4(r1)
        stq r4, 8(r1)
        ldbu r5, 0(r1)
        ldwu r6, 2(r1)
        ldl r7, 4(r1)
        ldq r8, 8(r1)
        {EXIT0}
        .data
buf:    .space 16
"
    ));
    assert_eq!(sim.state.gpr[5], 0xab);
    assert_eq!(sim.state.gpr[6], 0x1234);
    assert_eq!(sim.state.gpr[7], 0x12345678);
    assert_eq!(sim.state.gpr[8], 0x12345678);
}

#[test]
fn conditional_moves() {
    let sim = run(&format!(
        "
_start: mov 0, r1
        mov 5, r2
        cmoveq r1, 11, r3     ; r1 == 0 -> r3 = 11
        cmovne r1, 22, r4     ; not taken -> r4 = 0
        cmovgt r2, 33, r5     ; 5 > 0 -> r5 = 33
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[3], 11);
    assert_eq!(sim.state.gpr[4], 0);
    assert_eq!(sim.state.gpr[5], 33);
}

#[test]
fn branches_and_loop() {
    // Sum 1..=100 with a loop.
    let sim = run(&format!(
        "
_start: mov 0, r1          ; acc
        mov 100, r2        ; i
loop:   addq r1, r2, r1
        subq r2, 1, r2
        bne r2, loop
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[1], 5050);
}

#[test]
fn subroutine_call_and_return() {
    let sim = run(&format!(
        "
_start: lda r27, double
        mov 21, a0
        jsr (r27)           ; ra := return address
        mov v0, r9
        {EXIT0}
double: addq a0, a0, v0
        ret
"
    ));
    assert_eq!(sim.state.gpr[9], 42);
}

#[test]
fn bsr_links_and_branches() {
    let sim = run(&format!(
        "
_start: bsr fn
        mov v0, r9
        {EXIT0}
fn:     mov 9, v0
        ret
"
    ));
    assert_eq!(sim.state.gpr[9], 9);
}

#[test]
fn stack_discipline() {
    let sim = run(&format!(
        "
_start: mov 7, r1
        subq sp, 16, sp
        stq r1, 0(sp)
        mov 0, r1
        ldq r2, 0(sp)
        addq sp, 16, sp
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[2], 7);
}

#[test]
fn syscall_output() {
    let sim = run("
_start: mov 4, v0          ; PUTUDEC
        mov 12345, a0
        callsys
        mov 2, v0           ; WRITE
        ldah a0, ha16(msg)(zero)
        lda a0, slo16(msg)(a0)
        mov 3, a1
        callsys
        mov 1, v0           ; EXIT
        mov 3, a0
        callsys
        .data
msg:    .ascii \"ok\\n\"
");
    assert_eq!(String::from_utf8_lossy(sim.stdout()), "12345\nok\n");
    assert_eq!(sim.state.exit_code, 3);
}

#[test]
fn byte_manipulation() {
    let sim = run(&format!(
        "
_start: ldah r1, 0x1122(r31)
        lda r1, 0x3344(r1)   ; r1 = 0x11223344
        extbl r1, 1, r2      ; 0x33
        extwl r1, 2, r3      ; 0x1122
        insbl r1, 3, r4      ; 0x44 << 24
        zapnot r1, 3, r5     ; keep low 2 bytes
        cmpbge r31, r1, r6
        {EXIT0}"
    ));
    assert_eq!(sim.state.gpr[2], 0x33);
    assert_eq!(sim.state.gpr[3], 0x1122);
    assert_eq!(sim.state.gpr[4], 0x44u64 << 24);
    assert_eq!(sim.state.gpr[5], 0x3344);
}

#[test]
fn all_interfaces_agree_on_alpha() {
    let src = format!(
        "
_start: mov 0, r1
        mov 50, r2
loop:   addq r1, r2, r1
        subq r2, 1, r2
        bne r2, loop
        mov 4, v0
        mov r1, a0
        callsys
        {EXIT0}"
    );
    let image = lis_isa_alpha::assemble(&src).unwrap();
    let mut outputs = Vec::new();
    for bs in STANDARD_BUILDSETS {
        let mut sim = Simulator::new(lis_isa_alpha::spec(), bs).unwrap();
        sim.load_program(&image).unwrap();
        sim.run_to_halt(1_000_000).unwrap();
        outputs.push((bs.name, String::from_utf8_lossy(sim.stdout()).into_owned(), sim.state.gpr));
    }
    for (name, out, gpr) in &outputs[1..] {
        assert_eq!(out, &outputs[0].1, "{name}");
        assert_eq!(gpr, &outputs[0].2, "{name}");
    }
    assert_eq!(outputs[0].1, "1275\n");
}
