//! Directed per-instruction validation: every Alpha instruction executed
//! with known inputs and checked against hand-computed results — the "ISA
//! validation suite" the paper's methodology calls for (§IV-B3).

use lis_core::{DynInst, ONE_ALL};
use lis_runtime::Simulator;

/// Assembles `body`, presets registers, executes exactly the body's
/// instructions, and returns the simulator for inspection.
fn exec(body: &str, setup: &[(usize, u64)]) -> Simulator {
    let src = format!("_start:\n{body}\n");
    let image = lis_isa_alpha::assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let n = image.sections.iter().find(|s| s.name == ".text").unwrap().bytes.len() / 4;
    let mut sim = Simulator::new(lis_isa_alpha::spec(), ONE_ALL).unwrap();
    sim.load_program(&image).unwrap();
    for &(r, v) in setup {
        sim.state.gpr[r] = v;
    }
    let mut di = DynInst::new();
    // Execute until the PC leaves the body (taken branches may skip the
    // tail), bounded by the static instruction count.
    let end = 0x1000 + 4 * n as u64;
    // Dynamic bound is generous: bodies may loop (e.g. bdnz tests).
    for _ in 0..1000 {
        if sim.state.pc >= end {
            break;
        }
        sim.next_inst(&mut di).unwrap();
        assert!(di.fault.is_none(), "fault {:?} in `{body}`", di.fault);
    }
    sim
}

/// Runs a table of `(instruction, inputs, expected register results)`.
type Case = (&'static str, &'static [(usize, u64)], &'static [(usize, u64)]);

fn table(cases: &[Case]) {
    for (asm, setup, expect) in cases {
        let sim = exec(asm, setup);
        for &(r, v) in *expect {
            assert_eq!(sim.state.gpr[r], v, "`{asm}`: r{r}");
        }
    }
}

const NEG1: u64 = u64::MAX;

#[test]
fn arithmetic_operate() {
    table(&[
        ("addq r1, r2, r3", &[(1, 7), (2, 9)], &[(3, 16)]),
        ("addq r1, 255, r3", &[(1, 1)], &[(3, 256)]),
        ("subq r1, r2, r3", &[(1, 7), (2, 9)], &[(3, NEG1 - 1)]),
        ("addl r1, r2, r3", &[(1, 0x7fff_ffff), (2, 1)], &[(3, 0xffff_ffff_8000_0000)]),
        ("subl r1, r2, r3", &[(1, 0), (2, 1)], &[(3, NEG1)]),
        ("s4addq r1, r2, r3", &[(1, 5), (2, 7)], &[(3, 27)]),
        ("s8addq r1, r2, r3", &[(1, 5), (2, 7)], &[(3, 47)]),
        ("s4subq r1, r2, r3", &[(1, 5), (2, 7)], &[(3, 13)]),
        ("s8subq r1, r2, r3", &[(1, 5), (2, 7)], &[(3, 33)]),
        ("s4addl r1, r2, r3", &[(1, 0x4000_0000), (2, 4)], &[(3, 4)]),
        ("s8addl r1, r2, r3", &[(1, 1), (2, 2)], &[(3, 10)]),
        ("s4subl r1, r2, r3", &[(1, 1), (2, 8)], &[(3, 0xffff_ffff_ffff_fffc)]),
        ("s8subl r1, r2, r3", &[(1, 1), (2, 4)], &[(3, 4)]),
        ("mulq r1, r2, r3", &[(1, 1 << 40), (2, 1 << 30)], &[(3, 0)]), // 2^70 wraps
        ("mull r1, r2, r3", &[(1, 0x10000), (2, 0x10000)], &[(3, 0)]),
        ("umulh r1, r2, r3", &[(1, 1 << 40), (2, 1 << 40)], &[(3, 1 << 16)]),
    ]);
}

#[test]
fn comparisons() {
    table(&[
        ("cmpeq r1, r2, r3", &[(1, 5), (2, 5)], &[(3, 1)]),
        ("cmpeq r1, r2, r3", &[(1, 5), (2, 6)], &[(3, 0)]),
        ("cmplt r1, r2, r3", &[(1, NEG1), (2, 0)], &[(3, 1)]),
        ("cmplt r1, r2, r3", &[(1, 0), (2, NEG1)], &[(3, 0)]),
        ("cmple r1, r2, r3", &[(1, 5), (2, 5)], &[(3, 1)]),
        ("cmpult r1, r2, r3", &[(1, NEG1), (2, 0)], &[(3, 0)]),
        ("cmpult r1, r2, r3", &[(1, 0), (2, NEG1)], &[(3, 1)]),
        ("cmpule r1, r2, r3", &[(1, 7), (2, 7)], &[(3, 1)]),
        ("cmpbge r1, r2, r3", &[(1, 0x0102), (2, 0x0201)], &[(3, 0xfd)]),
    ]);
}

#[test]
fn logical_and_cmov() {
    table(&[
        ("and r1, r2, r3", &[(1, 0xf0f0), (2, 0xff00)], &[(3, 0xf000)]),
        ("bic r1, r2, r3", &[(1, 0xf0f0), (2, 0xff00)], &[(3, 0x00f0)]),
        ("bis r1, r2, r3", &[(1, 0xf0f0), (2, 0x0f0f)], &[(3, 0xffff)]),
        ("ornot r1, r2, r3", &[(1, 0), (2, NEG1 - 0xff)], &[(3, 0xff)]),
        ("xor r1, r2, r3", &[(1, 0xff00), (2, 0x0ff0)], &[(3, 0xf0f0)]),
        ("eqv r1, r2, r3", &[(1, 0xff00), (2, 0xff00)], &[(3, NEG1)]),
        ("cmoveq r1, r2, r3", &[(1, 0), (2, 42), (3, 7)], &[(3, 42)]),
        ("cmoveq r1, r2, r3", &[(1, 1), (2, 42), (3, 7)], &[(3, 7)]),
        ("cmovne r1, r2, r3", &[(1, 1), (2, 42)], &[(3, 42)]),
        ("cmovlt r1, r2, r3", &[(1, NEG1), (2, 42)], &[(3, 42)]),
        ("cmovge r1, r2, r3", &[(1, 0), (2, 42)], &[(3, 42)]),
        ("cmovle r1, r2, r3", &[(1, 1), (2, 42), (3, 9)], &[(3, 9)]),
        ("cmovgt r1, r2, r3", &[(1, 1), (2, 42)], &[(3, 42)]),
        ("cmovlbs r1, r2, r3", &[(1, 3), (2, 42)], &[(3, 42)]),
        ("cmovlbc r1, r2, r3", &[(1, 2), (2, 42)], &[(3, 42)]),
    ]);
}

#[test]
fn shifts_and_bytes() {
    table(&[
        ("sll r1, r2, r3", &[(1, 1), (2, 63)], &[(3, 1 << 63)]),
        ("srl r1, r2, r3", &[(1, 1 << 63), (2, 63)], &[(3, 1)]),
        ("sra r1, r2, r3", &[(1, 1 << 63), (2, 63)], &[(3, NEG1)]),
        ("zap r1, 0x0f, r3", &[(1, NEG1)], &[(3, 0xffff_ffff_0000_0000)]),
        ("zapnot r1, 0x0f, r3", &[(1, NEG1)], &[(3, 0xffff_ffff)]),
        ("extbl r1, 2, r3", &[(1, 0x0011_2233_4455_6677)], &[(3, 0x55)]),
        ("extwl r1, 4, r3", &[(1, 0x0011_2233_4455_6677)], &[(3, 0x2233)]),
        ("insbl r1, 3, r3", &[(1, 0xab)], &[(3, 0xab00_0000)]),
    ]);
}

#[test]
fn address_formation() {
    table(&[
        ("lda r3, 100(r1)", &[(1, 1000)], &[(3, 1100)]),
        ("lda r3, -100(r1)", &[(1, 1000)], &[(3, 900)]),
        ("ldah r3, 2(r1)", &[(1, 4)], &[(3, 0x2_0004)]),
        ("ldah r3, -1(r31)", &[], &[(3, NEG1 - 0xffff)]),
    ]);
}

#[test]
fn memory_round_trips() {
    let sim = exec(
        "stq r1, 0x2000(r31)\nldq r3, 0x2000(r31)\nldl r4, 0x2000(r31)\nldwu r5, 0x2000(r31)\nldbu r6, 0x2000(r31)",
        &[(1, 0x8899_aabb_ccdd_eeff)],
    );
    assert_eq!(sim.state.gpr[3], 0x8899_aabb_ccdd_eeff);
    assert_eq!(sim.state.gpr[4], 0xffff_ffff_ccdd_eeff, "ldl sign-extends");
    assert_eq!(sim.state.gpr[5], 0xeeff);
    assert_eq!(sim.state.gpr[6], 0xff);

    let sim = exec(
        "stb r1, 0x2000(r31)\nstw r1, 0x2008(r31)\nstl r1, 0x2010(r31)\nldq r3, 0x2000(r31)\nldq r4, 0x2008(r31)\nldq r5, 0x2010(r31)",
        &[(1, 0x1122_3344_5566_7788)],
    );
    assert_eq!(sim.state.gpr[3], 0x88);
    assert_eq!(sim.state.gpr[4], 0x7788);
    assert_eq!(sim.state.gpr[5], 0x5566_7788);
}

#[test]
fn branches_directed() {
    // Each conditional branch: a taken and a not-taken case.
    let cases: &[(&str, u64, bool)] = &[
        ("beq", 0, true),
        ("beq", 1, false),
        ("bne", 1, true),
        ("bne", 0, false),
        ("blt", NEG1, true),
        ("blt", 0, false),
        ("ble", 0, true),
        ("ble", 1, false),
        ("bgt", 1, true),
        ("bgt", 0, false),
        ("bge", 0, true),
        ("bge", NEG1, false),
        ("blbs", 1, true),
        ("blbs", 2, false),
        ("blbc", 2, true),
        ("blbc", 1, false),
    ];
    for &(op, input, taken) in cases {
        let body = format!("{op} r1, skip\nmov 1, r9\nskip: mov 1, r10");
        let sim = exec(&body, &[(1, input)]);
        assert_eq!(sim.state.gpr[9], u64::from(!taken), "{op} r1={input}: fall-through");
        assert_eq!(sim.state.gpr[10], 1, "{op}: target reached");
    }
}

#[test]
fn jumps_and_links() {
    // br writes the link register it names.
    let sim = exec("br r5, skip\nskip: mov 0, r10", &[]);
    assert_eq!(sim.state.gpr[5], 0x1004);
    // bsr links into ra.
    let sim = exec("bsr skip\nskip: mov 0, r10", &[]);
    assert_eq!(sim.state.gpr[26], 0x1004);
    // jmp goes through a register and links.
    let sim = exec("jmp r5, (r1)\n.org 0x1010\nmov 0, r10", &[(1, 0x1010)]);
    assert_eq!(sim.state.gpr[5], 0x1004);
    assert_eq!(sim.state.pc, 0x1014);
}

#[test]
fn r31_sinks_every_writeback() {
    let sim = exec("addq r1, r2, r31\nldq r31, 0x2000(r31)\nlda r31, 5(r31)", &[(1, 3), (2, 4)]);
    assert_eq!(sim.state.gpr[31], 0);
}

#[test]
fn every_instruction_is_covered_by_directed_tests() {
    // Meta-test: every InstDef name appears somewhere in this file.
    let me = include_str!("directed.rs");
    let covered: Vec<&str> =
        lis_isa_alpha::spec().insts.iter().map(|d| d.name).filter(|n| !me.contains(*n)).collect();
    // `callsys` is exercised throughout exec.rs and the kernels.
    assert!(
        covered.iter().all(|n| *n == "callsys"),
        "instructions without directed tests: {covered:?}"
    );
}
