//! Alpha register classes and accessors.
//!
//! One register class: 32 64-bit integer registers, with `r31` hardwired to
//! zero (reads return 0, writes are discarded — the accessor enforces this,
//! so no instruction semantics ever special-case it).

use lis_core::{ArchState, RegBacking, RegClass, RegClassDef};

/// The integer register class.
pub const GPR: RegClass = RegClass(0);

fn read_gpr(st: &ArchState, idx: u16) -> u64 {
    if idx == 31 {
        0
    } else {
        st.gpr[idx as usize]
    }
}

fn write_gpr(st: &mut ArchState, idx: u16, val: u64) {
    if idx != 31 {
        st.gpr[idx as usize] = val;
    }
}

/// Register classes of the Alpha description. The backing declares the
/// flat-file mapping (with `r31` as the special zero register) so compiled
/// backends can lower ordinary operands to direct register-file accesses.
pub const REG_CLASSES: &[RegClassDef] = &[RegClassDef {
    name: "gpr",
    count: 32,
    read: read_gpr,
    write: write_gpr,
    backing: Some(RegBacking::Gpr { special: Some(31), write_mask: u64::MAX }),
}];

/// Software register-name aliases, in index order (`$0`..`$31` and `rN` also
/// accepted by the assembler).
pub const REG_NAMES: &[&str] = &[
    "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
    "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9", "t10", "t11", "ra", "pv", "at", "gp", "sp",
    "zero",
];

/// Parses a register name (already lower-cased): `rN`, `$N`, or an alias.
pub fn parse_reg(name: &str) -> Option<u16> {
    if let Some(n) = name.strip_prefix('r').or_else(|| name.strip_prefix('$')) {
        if let Ok(v) = n.parse::<u16>() {
            if v < 32 {
                return Some(v);
            }
        }
    }
    REG_NAMES.iter().position(|&a| a == name).map(|i| i as u16)
}

/// The canonical display name for register `idx`.
pub fn reg_name(idx: u16) -> String {
    format!("r{idx}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_mem::Endian;

    #[test]
    fn r31_is_hardwired_zero() {
        let mut st = ArchState::new(Endian::Little);
        (REG_CLASSES[0].write)(&mut st, 31, 0xdead);
        assert_eq!((REG_CLASSES[0].read)(&st, 31), 0);
        (REG_CLASSES[0].write)(&mut st, 5, 0xdead);
        assert_eq!((REG_CLASSES[0].read)(&st, 5), 0xdead);
    }

    #[test]
    fn names_parse() {
        assert_eq!(parse_reg("r0"), Some(0));
        assert_eq!(parse_reg("$17"), Some(17));
        assert_eq!(parse_reg("sp"), Some(30));
        assert_eq!(parse_reg("zero"), Some(31));
        assert_eq!(parse_reg("ra"), Some(26));
        assert_eq!(parse_reg("r32"), None);
        assert_eq!(parse_reg("x1"), None);
        assert_eq!(REG_NAMES.len(), 32);
    }
}
