//! The single specification of the Alpha (user-mode integer) instruction set.
//!
//! Everything the toolkit knows about Alpha instruction behaviour lives in
//! this file, exactly once: encodings (mask/bits), operand declarations, and
//! the per-step semantic actions. The assembler, the disassembler, and every
//! derived interface are synthesized from the [`INSTS`] table.
//!
//! Formats (Alpha Architecture Handbook):
//!
//! ```text
//! Operate: opcode[31:26] ra[25:21] rb[20:16] 000 0 func[11:5] rc[4:0]
//!          opcode[31:26] ra[25:21] lit[20:13]    1 func[11:5] rc[4:0]
//! Memory:  opcode[31:26] ra[25:21] rb[20:16] disp[15:0]
//! Branch:  opcode[31:26] ra[25:21] disp[20:0]
//! PALcode: 000000 palfunc[25:0]
//! ```

use crate::regs::GPR;
use lis_core::{
    generic_operand_fetch, generic_writeback, step_actions, Exec, Fault, InstClass, InstDef,
    OperandDir, OperandSpec, F_ALU_OUT, F_COND, F_DEST1, F_EFF_ADDR, F_IMM, F_MEM_DATA, F_SRC1,
    F_SRC2, F_SRC3,
};

/// Operate-format encoding mask (opcode + function code; the literal bit is
/// deliberately outside the mask so one definition covers both forms).
pub const OPERATE_MASK: u32 = 0xfc00_0fe0;
/// Memory/branch-format encoding mask (opcode only).
pub const MEM_MASK: u32 = 0xfc00_0000;

/// Builds operate-format match bits.
pub const fn operate_bits(op: u32, func: u32) -> u32 {
    (op << 26) | (func << 5)
}

/// Builds memory/branch-format match bits.
pub const fn op_bits(op: u32) -> u32 {
    op << 26
}

#[inline]
fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

/// Second operand of an operate instruction: the 8-bit literal when present,
/// otherwise the fetched `rb` value.
#[inline]
fn srcb(ex: &Exec<'_>) -> u64 {
    if ex.has(F_IMM) {
        ex.get(F_IMM)
    } else {
        ex.get(F_SRC2)
    }
}

#[inline]
fn out(ex: &mut Exec<'_>, v: u64) {
    ex.set(F_ALU_OUT, v);
    ex.set(F_DEST1, v);
}

// ---------------------------------------------------------------------
// Decode actions (one per format)
// ---------------------------------------------------------------------

fn dec_operate(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ((w >> 21) & 31) as u16);
    if w & 0x1000 != 0 {
        ex.set(F_IMM, ((w >> 13) & 0xff) as u64);
    } else {
        ex.ops.push_src(GPR, ((w >> 16) & 31) as u16);
    }
    ex.ops.push_dest(GPR, (w & 31) as u16);
    Ok(())
}

fn dec_mem_load(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_dest(GPR, ((w >> 21) & 31) as u16);
    ex.ops.push_src(GPR, ((w >> 16) & 31) as u16);
    ex.set(F_IMM, (w & 0xffff) as u16 as i16 as i64 as u64);
    Ok(())
}

fn dec_mem_store(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ((w >> 16) & 31) as u16); // base
    ex.ops.push_src(GPR, ((w >> 21) & 31) as u16); // data
    ex.set(F_IMM, (w & 0xffff) as u16 as i16 as i64 as u64);
    Ok(())
}

fn dec_cbranch(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_src(GPR, ((w >> 21) & 31) as u16);
    let disp = ((w & 0x1f_ffff) << 11) as i32 >> 11; // sign-extend 21 bits
    ex.set(F_IMM, disp as i64 as u64);
    Ok(())
}

fn dec_br(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_dest(GPR, ((w >> 21) & 31) as u16);
    let disp = ((w & 0x1f_ffff) << 11) as i32 >> 11;
    ex.set(F_IMM, disp as i64 as u64);
    Ok(())
}

fn dec_jump(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let w = ex.header.instr_bits;
    ex.ops.push_dest(GPR, ((w >> 21) & 31) as u16);
    ex.ops.push_src(GPR, ((w >> 16) & 31) as u16);
    Ok(())
}

fn dec_callsys(ex: &mut Exec<'_>) -> Result<(), Fault> {
    // LIS OS ABI on Alpha: v0 (r0) = number, a0 (r16), a1 (r17) = arguments.
    ex.ops.push_src(GPR, 0);
    ex.ops.push_src(GPR, 16);
    ex.ops.push_src(GPR, 17);
    Ok(())
}

// ---------------------------------------------------------------------
// Evaluate actions
// ---------------------------------------------------------------------

macro_rules! alu {
    ($($fname:ident = $f:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let a = ex.get(F_SRC1);
            let b = srcb(ex);
            #[allow(clippy::redundant_closure_call)]
            let v: u64 = ($f)(a, b);
            out(ex, v);
            Ok(())
        })*
    };
}

alu! {
    ev_addl = |a: u64, b: u64| sext32(a.wrapping_add(b));
    ev_addq = |a: u64, b: u64| a.wrapping_add(b);
    ev_subl = |a: u64, b: u64| sext32(a.wrapping_sub(b));
    ev_subq = |a: u64, b: u64| a.wrapping_sub(b);
    ev_s4addl = |a: u64, b: u64| sext32((a << 2).wrapping_add(b));
    ev_s4addq = |a: u64, b: u64| (a << 2).wrapping_add(b);
    ev_s8addl = |a: u64, b: u64| sext32((a << 3).wrapping_add(b));
    ev_s8addq = |a: u64, b: u64| (a << 3).wrapping_add(b);
    ev_s4subl = |a: u64, b: u64| sext32((a << 2).wrapping_sub(b));
    ev_s4subq = |a: u64, b: u64| (a << 2).wrapping_sub(b);
    ev_s8subl = |a: u64, b: u64| sext32((a << 3).wrapping_sub(b));
    ev_s8subq = |a: u64, b: u64| (a << 3).wrapping_sub(b);
    ev_cmpeq = |a: u64, b: u64| (a == b) as u64;
    ev_cmplt = |a: u64, b: u64| ((a as i64) < b as i64) as u64;
    ev_cmple = |a: u64, b: u64| (a as i64 <= b as i64) as u64;
    ev_cmpult = |a: u64, b: u64| (a < b) as u64;
    ev_cmpule = |a: u64, b: u64| (a <= b) as u64;
    ev_and = |a: u64, b: u64| a & b;
    ev_bic = |a: u64, b: u64| a & !b;
    ev_bis = |a: u64, b: u64| a | b;
    ev_ornot = |a: u64, b: u64| a | !b;
    ev_xor = |a: u64, b: u64| a ^ b;
    ev_eqv = |a: u64, b: u64| a ^ !b;
    ev_sll = |a: u64, b: u64| a << (b & 63);
    ev_srl = |a: u64, b: u64| a >> (b & 63);
    ev_sra = |a: u64, b: u64| ((a as i64) >> (b & 63)) as u64;
    ev_mull = |a: u64, b: u64| sext32(a.wrapping_mul(b));
    ev_mulq = |a: u64, b: u64| a.wrapping_mul(b);
    ev_umulh = |a: u64, b: u64| ((a as u128).wrapping_mul(b as u128) >> 64) as u64;
    ev_zapnot = |a: u64, b: u64| zap_bytes(a, !(b as u8));
    ev_zap = |a: u64, b: u64| zap_bytes(a, b as u8);
    ev_extbl = |a: u64, b: u64| (a >> ((b & 7) * 8)) & 0xff;
    ev_extwl = |a: u64, b: u64| (a >> ((b & 7) * 8)) & 0xffff;
    ev_insbl = |a: u64, b: u64| (a & 0xff) << ((b & 7) * 8);
    ev_cmpbge = |a: u64, b: u64| cmpbge(a, b);
}

fn zap_bytes(a: u64, mask: u8) -> u64 {
    let mut v = a;
    for i in 0..8 {
        if mask & (1 << i) != 0 {
            v &= !(0xffu64 << (i * 8));
        }
    }
    v
}

fn cmpbge(a: u64, b: u64) -> u64 {
    let mut r = 0u64;
    for i in 0..8 {
        let ab = (a >> (i * 8)) as u8;
        let bb = (b >> (i * 8)) as u8;
        if ab >= bb {
            r |= 1 << i;
        }
    }
    r
}

macro_rules! cmov {
    ($($fname:ident = $cond:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let a = ex.get(F_SRC1);
            #[allow(clippy::redundant_closure_call)]
            let take = ($cond)(a);
            ex.set(F_COND, take as u64);
            if take {
                out(ex, srcb(ex));
            }
            Ok(())
        })*
    };
}

cmov! {
    ev_cmoveq = |a: u64| a == 0;
    ev_cmovne = |a: u64| a != 0;
    ev_cmovlt = |a: u64| (a as i64) < 0;
    ev_cmovle = |a: u64| (a as i64) <= 0;
    ev_cmovgt = |a: u64| (a as i64) > 0;
    ev_cmovge = |a: u64| (a as i64) >= 0;
    ev_cmovlbs = |a: u64| a & 1 != 0;
    ev_cmovlbc = |a: u64| a & 1 == 0;
}

macro_rules! cbranch {
    ($($fname:ident = $cond:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let a = ex.get(F_SRC1);
            #[allow(clippy::redundant_closure_call)]
            let take = ($cond)(a);
            ex.set(F_COND, take as u64);
            if take {
                let t = ex.header.pc.wrapping_add(4).wrapping_add(ex.get(F_IMM) << 2);
                ex.take_branch(t);
            } else {
                ex.branch_not_taken();
            }
            Ok(())
        })*
    };
}

cbranch! {
    ev_beq = |a: u64| a == 0;
    ev_bne = |a: u64| a != 0;
    ev_blt = |a: u64| (a as i64) < 0;
    ev_ble = |a: u64| (a as i64) <= 0;
    ev_bgt = |a: u64| (a as i64) > 0;
    ev_bge = |a: u64| (a as i64) >= 0;
    ev_blbs = |a: u64| a & 1 != 0;
    ev_blbc = |a: u64| a & 1 == 0;
}

fn ev_br(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.set(F_DEST1, ex.header.pc.wrapping_add(4));
    let t = ex.header.pc.wrapping_add(4).wrapping_add(ex.get(F_IMM) << 2);
    ex.take_branch(t);
    Ok(())
}

fn ev_jmp(ex: &mut Exec<'_>) -> Result<(), Fault> {
    ex.set(F_DEST1, ex.header.pc.wrapping_add(4));
    let t = ex.get(F_SRC1) & !3;
    ex.take_branch(t);
    Ok(())
}

fn ev_lda(ex: &mut Exec<'_>) -> Result<(), Fault> {
    out(ex, ex.get(F_SRC1).wrapping_add(ex.get(F_IMM)));
    Ok(())
}

fn ev_ldah(ex: &mut Exec<'_>) -> Result<(), Fault> {
    out(ex, ex.get(F_SRC1).wrapping_add(ex.get(F_IMM) << 16));
    Ok(())
}

fn ev_ea(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ea = ex.get(F_SRC1).wrapping_add(ex.get(F_IMM));
    ex.set(F_EFF_ADDR, ea);
    Ok(())
}

// ---------------------------------------------------------------------
// Memory actions
// ---------------------------------------------------------------------

macro_rules! load {
    ($($fname:ident = ($size:expr, $signed:expr);)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let v = ex.load(ex.get(F_EFF_ADDR), $size, $signed)?;
            ex.set(F_MEM_DATA, v);
            ex.set(F_DEST1, v);
            Ok(())
        })*
    };
}

load! {
    mem_ldq = (8, false);
    mem_ldl = (4, true);
    mem_ldwu = (2, false);
    mem_ldbu = (1, false);
}

macro_rules! store {
    ($($fname:ident = $size:expr;)*) => {
        $(fn $fname(ex: &mut Exec<'_>) -> Result<(), Fault> {
            let v = ex.get(F_SRC2);
            ex.set(F_MEM_DATA, v);
            ex.store(ex.get(F_EFF_ADDR), $size, v)
        })*
    };
}

store! {
    mem_stq = 8;
    mem_stl = 4;
    mem_stw = 2;
    mem_stb = 1;
}

fn ex_callsys(ex: &mut Exec<'_>) -> Result<(), Fault> {
    let ret = ex.syscall(ex.get(F_SRC1), ex.get(F_SRC2), ex.get(F_SRC3))?;
    ex.set(F_DEST1, ret);
    ex.write_reg(GPR.0, 0, ret);
    Ok(())
}

// ---------------------------------------------------------------------
// The instruction table
// ---------------------------------------------------------------------

const RA_S: OperandSpec = OperandSpec { name: "ra", dir: OperandDir::Src, class: GPR };
const RB_S: OperandSpec = OperandSpec { name: "rb", dir: OperandDir::Src, class: GPR };
const RA_D: OperandSpec = OperandSpec { name: "ra", dir: OperandDir::Dest, class: GPR };
const RC_D: OperandSpec = OperandSpec { name: "rc", dir: OperandDir::Dest, class: GPR };

const OPS_OPERATE: &[OperandSpec] = &[RA_S, RB_S, RC_D];
const OPS_LOAD: &[OperandSpec] = &[RA_D, RB_S];
const OPS_STORE: &[OperandSpec] = &[RA_S, RB_S];
const OPS_CBR: &[OperandSpec] = &[RA_S];
const OPS_BR: &[OperandSpec] = &[RA_D];
const OPS_JMP: &[OperandSpec] = &[RA_D, RB_S];

macro_rules! operate {
    ($name:literal, $op:expr, $func:expr, $ev:ident) => {
        InstDef {
            name: $name,
            class: InstClass::Alu,
            mask: OPERATE_MASK,
            bits: operate_bits($op, $func),
            operands: OPS_OPERATE,
            actions: step_actions! {
                decode: dec_operate,
                operand_fetch: generic_operand_fetch,
                evaluate: $ev,
                writeback: generic_writeback,
            },
            extra_flows: &[],
        }
    };
}

macro_rules! load_inst {
    ($name:literal, $op:expr, $mem:ident) => {
        InstDef {
            name: $name,
            class: InstClass::Load,
            mask: MEM_MASK,
            bits: op_bits($op),
            operands: OPS_LOAD,
            actions: step_actions! {
                decode: dec_mem_load,
                operand_fetch: generic_operand_fetch,
                evaluate: ev_ea,
                memory: $mem,
                writeback: generic_writeback,
            },
            extra_flows: &[],
        }
    };
}

macro_rules! store_inst {
    ($name:literal, $op:expr, $mem:ident) => {
        InstDef {
            name: $name,
            class: InstClass::Store,
            mask: MEM_MASK,
            bits: op_bits($op),
            operands: OPS_STORE,
            actions: step_actions! {
                decode: dec_mem_store,
                operand_fetch: generic_operand_fetch,
                evaluate: ev_ea,
                memory: $mem,
            },
            extra_flows: &[],
        }
    };
}

macro_rules! cbranch_inst {
    ($name:literal, $op:expr, $ev:ident) => {
        InstDef {
            name: $name,
            class: InstClass::Branch,
            mask: MEM_MASK,
            bits: op_bits($op),
            operands: OPS_CBR,
            actions: step_actions! {
                decode: dec_cbranch,
                operand_fetch: generic_operand_fetch,
                evaluate: $ev,
            },
            extra_flows: &[],
        }
    };
}

/// Every instruction of the Alpha description, in decode-priority order.
pub const INSTS: &[InstDef] = &[
    // PALcode (exact match, highest priority)
    InstDef {
        name: "callsys",
        class: InstClass::Syscall,
        mask: 0xffff_ffff,
        bits: 0x0000_0083,
        operands: &[],
        actions: step_actions! {
            decode: dec_callsys,
            operand_fetch: generic_operand_fetch,
            exception: ex_callsys,
        },
        extra_flows: &[],
    },
    // Memory format
    InstDef {
        name: "lda",
        class: InstClass::Alu,
        mask: MEM_MASK,
        bits: op_bits(0x08),
        operands: OPS_LOAD,
        actions: step_actions! {
            decode: dec_mem_load,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_lda,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "ldah",
        class: InstClass::Alu,
        mask: MEM_MASK,
        bits: op_bits(0x09),
        operands: OPS_LOAD,
        actions: step_actions! {
            decode: dec_mem_load,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_ldah,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    load_inst!("ldbu", 0x0a, mem_ldbu),
    load_inst!("ldwu", 0x0c, mem_ldwu),
    load_inst!("ldl", 0x28, mem_ldl),
    load_inst!("ldq", 0x29, mem_ldq),
    store_inst!("stb", 0x0e, mem_stb),
    store_inst!("stw", 0x0d, mem_stw),
    store_inst!("stl", 0x2c, mem_stl),
    store_inst!("stq", 0x2d, mem_stq),
    // Integer arithmetic (opcode 0x10)
    operate!("addl", 0x10, 0x00, ev_addl),
    operate!("s4addl", 0x10, 0x02, ev_s4addl),
    operate!("subl", 0x10, 0x09, ev_subl),
    operate!("s4subl", 0x10, 0x0b, ev_s4subl),
    operate!("cmpbge", 0x10, 0x0f, ev_cmpbge),
    operate!("s8addl", 0x10, 0x12, ev_s8addl),
    operate!("s8subl", 0x10, 0x1b, ev_s8subl),
    operate!("cmpult", 0x10, 0x1d, ev_cmpult),
    operate!("addq", 0x10, 0x20, ev_addq),
    operate!("s4addq", 0x10, 0x22, ev_s4addq),
    operate!("subq", 0x10, 0x29, ev_subq),
    operate!("s4subq", 0x10, 0x2b, ev_s4subq),
    operate!("cmpeq", 0x10, 0x2d, ev_cmpeq),
    operate!("s8addq", 0x10, 0x32, ev_s8addq),
    operate!("s8subq", 0x10, 0x3b, ev_s8subq),
    operate!("cmpule", 0x10, 0x3d, ev_cmpule),
    operate!("cmplt", 0x10, 0x4d, ev_cmplt),
    operate!("cmple", 0x10, 0x6d, ev_cmple),
    // Logical (opcode 0x11)
    operate!("and", 0x11, 0x00, ev_and),
    operate!("bic", 0x11, 0x08, ev_bic),
    operate!("cmovlbs", 0x11, 0x14, ev_cmovlbs),
    operate!("cmovlbc", 0x11, 0x16, ev_cmovlbc),
    operate!("bis", 0x11, 0x20, ev_bis),
    operate!("cmoveq", 0x11, 0x24, ev_cmoveq),
    operate!("cmovne", 0x11, 0x26, ev_cmovne),
    operate!("ornot", 0x11, 0x28, ev_ornot),
    operate!("xor", 0x11, 0x40, ev_xor),
    operate!("cmovlt", 0x11, 0x44, ev_cmovlt),
    operate!("cmovge", 0x11, 0x46, ev_cmovge),
    operate!("eqv", 0x11, 0x48, ev_eqv),
    operate!("cmovle", 0x11, 0x64, ev_cmovle),
    operate!("cmovgt", 0x11, 0x66, ev_cmovgt),
    // Shift/byte (opcode 0x12)
    operate!("extbl", 0x12, 0x06, ev_extbl),
    operate!("extwl", 0x12, 0x16, ev_extwl),
    operate!("insbl", 0x12, 0x0b, ev_insbl),
    operate!("zap", 0x12, 0x30, ev_zap),
    operate!("zapnot", 0x12, 0x31, ev_zapnot),
    operate!("srl", 0x12, 0x34, ev_srl),
    operate!("sll", 0x12, 0x39, ev_sll),
    operate!("sra", 0x12, 0x3c, ev_sra),
    // Multiply (opcode 0x13)
    operate!("mull", 0x13, 0x00, ev_mull),
    operate!("mulq", 0x13, 0x20, ev_mulq),
    operate!("umulh", 0x13, 0x30, ev_umulh),
    // Jump (opcode 0x1a; jsr/ret share the encoding, hint bits ignored)
    InstDef {
        name: "jmp",
        class: InstClass::Jump,
        mask: MEM_MASK,
        bits: op_bits(0x1a),
        operands: OPS_JMP,
        actions: step_actions! {
            decode: dec_jump,
            operand_fetch: generic_operand_fetch,
            evaluate: ev_jmp,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    // Branch format
    InstDef {
        name: "br",
        class: InstClass::Jump,
        mask: MEM_MASK,
        bits: op_bits(0x30),
        operands: OPS_BR,
        actions: step_actions! {
            decode: dec_br,
            evaluate: ev_br,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    InstDef {
        name: "bsr",
        class: InstClass::Jump,
        mask: MEM_MASK,
        bits: op_bits(0x34),
        operands: OPS_BR,
        actions: step_actions! {
            decode: dec_br,
            evaluate: ev_br,
            writeback: generic_writeback,
        },
        extra_flows: &[],
    },
    cbranch_inst!("blbc", 0x38, ev_blbc),
    cbranch_inst!("beq", 0x39, ev_beq),
    cbranch_inst!("blt", 0x3a, ev_blt),
    cbranch_inst!("ble", 0x3b, ev_ble),
    cbranch_inst!("blbs", 0x3c, ev_blbs),
    cbranch_inst!("bne", 0x3d, ev_bne),
    cbranch_inst!("bge", 0x3e, ev_bge),
    cbranch_inst!("bgt", 0x3f, ev_bgt),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_semantics() {
        assert_eq!(sext32(0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(zap_bytes(0x1122_3344_5566_7788, 0x0f), 0x1122_3344_0000_0000);
        // byte0: 2>=1 set; byte1: 1>=2 clear; bytes 2..7: 0>=0 set.
        assert_eq!(cmpbge(0x0102, 0x0201), 0xfd);
    }

    #[test]
    fn cmpbge_per_byte() {
        assert_eq!(cmpbge(0x02, 0x01), 0xff);
        assert_eq!(cmpbge(0x01, 0x02), 0xfe);
    }

    #[test]
    fn instruction_count_is_stable() {
        // 1 pal + 2 lda/ldah + 8 load/store + 43 operate + 1 jump + 2 br + 8 cbr.
        assert_eq!(INSTS.len(), 65);
    }

    #[test]
    fn encodings_do_not_collide() {
        for (i, a) in INSTS.iter().enumerate() {
            for b in &INSTS[i + 1..] {
                let shared = a.mask & b.mask;
                assert!(
                    a.bits & shared != b.bits & shared,
                    "{} and {} are ambiguous",
                    a.name,
                    b.name
                );
            }
        }
    }
}
