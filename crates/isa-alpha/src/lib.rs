//! # lis-isa-alpha — single specification of the Alpha instruction set
//!
//! A user-mode, integer-only subset of the Alpha architecture (the first of
//! the three ISAs evaluated in the paper): 61 instructions covering the
//! operate (arithmetic, logical, shift, multiply, conditional move), memory
//! (including the BWX byte/word extension), branch, jump, and PALcode
//! (`callsys`) formats. `r31` reads as zero; floating point and kernel mode
//! are excluded, as in the paper's evaluation.
//!
//! Everything — simulators at every interface detail level, the assembler,
//! and the disassembler — derives from the one instruction table in
//! [`semantics`]: the single-specification principle.
//!
//! System calls use the LIS OS ABI: number in `v0` (r0), arguments in
//! `a0`/`a1` (r16/r17), result in `v0`, invoked by `callsys`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod disasm;
pub mod regs;
pub mod semantics;

use lis_core::{count_lines, IsaSpec, SpecStats};
use lis_mem::Endian;

pub use asm::AlphaAsm;

/// The Alpha ISA specification.
static SPEC: IsaSpec = IsaSpec {
    name: "alpha",
    word_bits: 64,
    endian: Endian::Little,
    insts: semantics::INSTS,
    reg_classes: regs::REG_CLASSES,
    isa_fields: &[],
    disasm: disasm::disasm,
    pc_mask: !3,
    sp_gpr: 30,
};

/// Returns the Alpha ISA specification.
pub fn spec() -> &'static IsaSpec {
    &SPEC
}

/// Assembles Alpha source into a loadable image.
///
/// # Errors
///
/// Returns the first assembly error with its line number.
///
/// # Examples
///
/// ```
/// let image = lis_isa_alpha::assemble("_start: addq r1, r2, r3\n")?;
/// assert_eq!(image.entry, 0x1000);
/// # Ok::<(), lis_asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<lis_mem::Image, lis_asm::AsmError> {
    lis_asm::assemble(&AlphaAsm, src)
}

/// Mechanical Table I statistics for the Alpha description.
pub fn spec_stats() -> SpecStats {
    let isa = count_lines(include_str!("semantics.rs")).add(count_lines(include_str!("regs.rs")));
    let tooling = count_lines(include_str!("asm.rs")).add(count_lines(include_str!("disasm.rs")));
    SpecStats {
        isa: "alpha",
        isa_description_lines: isa.code,
        os_support_lines: 0, // the OS convention lives inside the description
        tooling_lines: tooling.code,
        num_instructions: semantics::INSTS.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates() {
        spec().validate().unwrap();
    }

    #[test]
    fn pc_mask_keeps_alignment() {
        assert_eq!(0x1003u64 & spec().pc_mask, 0x1000);
    }

    #[test]
    fn stats_are_plausible() {
        let s = spec_stats();
        assert_eq!(s.num_instructions, 65);
        assert!(s.isa_description_lines > 300);
        assert!(s.tooling_lines > 100);
    }
}
