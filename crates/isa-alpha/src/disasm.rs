//! The Alpha disassembler — derived from the same instruction table.

use crate::regs::reg_name;
use crate::semantics::INSTS;

/// Renders one instruction word as assembly (for traces and debugging).
pub fn disasm(word: u32, pc: u64) -> String {
    let Some(def) = INSTS.iter().find(|d| d.matches(word)) else {
        return format!(".word {word:#010x}");
    };
    let name = def.name;
    let opc = word >> 26;
    let ra = reg_name(((word >> 21) & 31) as u16);
    let rb = reg_name(((word >> 16) & 31) as u16);
    match opc {
        0x00 => name.to_string(),
        0x10..=0x13 => {
            let rc = reg_name((word & 31) as u16);
            if word & 0x1000 != 0 {
                format!("{name} {ra}, {}, {rc}", (word >> 13) & 0xff)
            } else {
                format!("{name} {ra}, {rb}, {rc}")
            }
        }
        0x08 | 0x09 | 0x0a | 0x0c | 0x0d | 0x0e | 0x28 | 0x29 | 0x2c | 0x2d => {
            let disp = (word & 0xffff) as u16 as i16;
            format!("{name} {ra}, {disp}({rb})")
        }
        0x1a => format!("{name} {ra}, ({rb})"),
        0x30 | 0x34 => {
            let disp = ((word & 0x1f_ffff) << 11) as i32 >> 11;
            let target = pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2);
            format!("{name} {ra}, {target:#x}")
        }
        0x38..=0x3f => {
            let disp = ((word & 0x1f_ffff) << 11) as i32 >> 11;
            let target = pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2);
            format!("{name} {ra}, {target:#x}")
        }
        _ => format!("{name} ?"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::AlphaAsm;
    use lis_asm::assemble;

    fn round(line: &str) -> String {
        let img = assemble(&AlphaAsm, line).unwrap();
        let w = u32::from_le_bytes(img.sections[0].bytes[0..4].try_into().unwrap());
        disasm(w, 0x1000)
    }

    #[test]
    fn round_trips() {
        assert_eq!(round("addq r1, r2, r3"), "addq r1, r2, r3");
        assert_eq!(round("addq r1, 99, r3"), "addq r1, 99, r3");
        assert_eq!(round("ldq r5, -8(r30)"), "ldq r5, -8(r30)");
        assert_eq!(round("x: beq r1, x"), "beq r1, 0x1000");
        assert_eq!(round("callsys"), "callsys");
        assert_eq!(round("ret"), "jmp r31, (r26)");
        assert_eq!(disasm(0x1c00_0000, 0), ".word 0x1c000000");
    }
}
