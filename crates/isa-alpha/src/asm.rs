//! The Alpha assembler — encodings derived from the instruction table.
//!
//! Syntax follows the Alpha convention: `addq r1, r2, r3` (the middle
//! operand may be a 0..255 literal), `ldq r1, 8(r2)`, `beq r1, label`,
//! `br label`, `bsr ra, label`, `jmp (r2)`, `ret`. Pseudo-instructions:
//! `nop`, `mov`, `clr`, `negq`, `jsr`, `ret`, `callsys`.

use crate::regs::parse_reg;
use crate::semantics::INSTS;
use lis_asm::{EncodeCtx, IsaAssembler, Operand};
use lis_core::InstDef;
use lis_mem::Endian;

/// The Alpha [`IsaAssembler`].
#[derive(Debug, Default, Clone, Copy)]
pub struct AlphaAsm;

fn find(name: &str) -> Option<&'static InstDef> {
    INSTS.iter().find(|d| d.name == name)
}

fn opcode_of(def: &InstDef) -> u32 {
    def.bits >> 26
}

fn reg(op: &Operand, what: &str) -> Result<u32, String> {
    op.reg()
        .and_then(parse_reg)
        .map(u32::from)
        .ok_or_else(|| format!("expected register for {what}"))
}

fn enc_operate(bits: u32, ra: u32, b: &Operand, rc: u32) -> Result<u32, String> {
    let base = bits | ra << 21 | rc;
    match b {
        Operand::Reg(r) => {
            let rb = parse_reg(r).ok_or("bad register")? as u32;
            Ok(base | rb << 16)
        }
        Operand::Imm(v) => {
            if !(0..=255).contains(v) {
                return Err(format!("literal {v} out of range 0..=255"));
            }
            Ok(base | ((*v as u32) << 13) | 0x1000)
        }
        _ => Err("second operand must be a register or literal".into()),
    }
}

fn enc_mem(bits: u32, ra: u32, disp: i64, rb: u32) -> Result<u32, String> {
    if !(-32768..=32767).contains(&disp) {
        return Err(format!("displacement {disp} out of range for 16 bits"));
    }
    Ok(bits | ra << 21 | rb << 16 | (disp as u16 as u32))
}

fn enc_branch(bits: u32, ra: u32, target: i64, addr: u64) -> Result<u32, String> {
    let delta = target - (addr as i64 + 4);
    if delta % 4 != 0 {
        return Err("branch target is not word-aligned".into());
    }
    let disp = delta / 4;
    if !(-(1 << 20)..(1 << 20)).contains(&disp) {
        return Err(format!("branch displacement {disp} out of range for 21 bits"));
    }
    Ok(bits | ra << 21 | (disp as u32 & 0x1f_ffff))
}

/// Splits `disp(base)` / bare-immediate / bare-register memory operands.
fn mem_operand(op: &Operand) -> Result<(i64, u32), String> {
    match op {
        Operand::BaseDisp { disp, base } => {
            let rb = parse_reg(base).ok_or("bad base register")? as u32;
            Ok((*disp, rb))
        }
        Operand::Imm(v) => Ok((*v, 31)),
        _ => Err("expected `disp(base)` or an absolute address".into()),
    }
}

impl IsaAssembler for AlphaAsm {
    fn name(&self) -> &'static str {
        "alpha"
    }

    fn endian(&self) -> Endian {
        Endian::Little
    }

    fn is_reg(&self, name: &str) -> bool {
        parse_reg(name).is_some()
    }

    fn encode(&self, mn: &str, ops: &[Operand], ctx: &EncodeCtx<'_>) -> Result<u32, String> {
        // Pseudo-instructions first.
        match mn {
            "nop" | "unop" => return self.encode("bis", &reg3(31, 31, 31), ctx),
            "clr" => {
                let rc = reg(&ops[0], "clr")?;
                return enc_operate(find("bis").unwrap().bits, 31, &Operand::Reg("r31".into()), rc);
            }
            "mov" => {
                if ops.len() != 2 {
                    return Err("mov needs two operands".into());
                }
                let rc = reg(&ops[1], "mov destination")?;
                return match &ops[0] {
                    Operand::Reg(_) => {
                        let rb = reg(&ops[0], "mov source")?;
                        enc_operate(
                            find("bis").unwrap().bits,
                            31,
                            &Operand::Reg(format!("r{rb}")),
                            rc,
                        )
                    }
                    Operand::Imm(v) if (0..=255).contains(v) => {
                        enc_operate(find("bis").unwrap().bits, 31, &Operand::Imm(*v), rc)
                    }
                    Operand::Imm(v) if (-32768..=32767).contains(v) => {
                        enc_mem(find("lda").unwrap().bits, rc, *v, 31)
                    }
                    _ => Err("mov immediate out of range (use lda/ldah)".into()),
                };
            }
            "negq" => {
                if ops.len() != 2 {
                    return Err("negq needs two operands".into());
                }
                let rb = reg(&ops[0], "negq source")?;
                let rc = reg(&ops[1], "negq destination")?;
                return enc_operate(
                    find("subq").unwrap().bits,
                    31,
                    &Operand::Reg(format!("r{rb}")),
                    rc,
                );
            }
            "ret" => {
                // ret [ra,] [(rb)] — defaults ra=r31, rb=r26.
                let (ra, rb) = match ops {
                    [] => (31, 26),
                    [one] => (31, mem_base(one)?),
                    [a, b] => (reg(a, "ret")?, mem_base(b)?),
                    _ => return Err("ret takes at most two operands".into()),
                };
                return Ok(find("jmp").unwrap().bits | ra << 21 | rb << 16);
            }
            "jsr" => {
                // jsr [ra,] (rb) — default ra=r26.
                let (ra, rb) = match ops {
                    [one] => (26, mem_base(one)?),
                    [a, b] => (reg(a, "jsr")?, mem_base(b)?),
                    _ => return Err("jsr needs a target register".into()),
                };
                return Ok(find("jmp").unwrap().bits | ra << 21 | rb << 16);
            }
            _ => {}
        }

        let def = find(mn).ok_or_else(|| format!("unknown mnemonic `{mn}`"))?;
        let opc = opcode_of(def);
        match opc {
            // callsys
            0x00 => Ok(def.bits),
            // operate formats
            0x10..=0x13 => {
                if ops.len() != 3 {
                    return Err(format!("{mn} needs `ra, rb_or_lit, rc`"));
                }
                let ra = reg(&ops[0], "ra")?;
                let rc = reg(&ops[2], "rc")?;
                enc_operate(def.bits, ra, &ops[1], rc)
            }
            // memory formats (including lda/ldah)
            0x08 | 0x09 | 0x0a | 0x0c | 0x0d | 0x0e | 0x28 | 0x29 | 0x2c | 0x2d => {
                if ops.len() != 2 {
                    return Err(format!("{mn} needs `ra, disp(rb)`"));
                }
                let ra = reg(&ops[0], "ra")?;
                let (disp, rb) = mem_operand(&ops[1])?;
                enc_mem(def.bits, ra, disp, rb)
            }
            // jump
            0x1a => {
                let (ra, rb) = match ops {
                    [one] => (31, mem_base(one)?),
                    [a, b] => (reg(a, "ra")?, mem_base(b)?),
                    _ => return Err("jmp needs `(rb)` or `ra, (rb)`".into()),
                };
                Ok(def.bits | ra << 21 | rb << 16)
            }
            // br/bsr
            0x30 | 0x34 => {
                let (ra, target) = match ops {
                    [t] => (if opc == 0x34 { 26 } else { 31 }, t),
                    [a, t] => (reg(a, "ra")?, t),
                    _ => return Err(format!("{mn} needs a target")),
                };
                let t = target.imm().ok_or("branch target must be an address")?;
                enc_branch(def.bits, ra, t, ctx.addr)
            }
            // conditional branches
            0x38..=0x3f => {
                if ops.len() != 2 {
                    return Err(format!("{mn} needs `ra, target`"));
                }
                let ra = reg(&ops[0], "ra")?;
                let t = ops[1].imm().ok_or("branch target must be an address")?;
                enc_branch(def.bits, ra, t, ctx.addr)
            }
            _ => Err(format!("unhandled opcode {opc:#x} for `{mn}`")),
        }
    }
}

fn mem_base(op: &Operand) -> Result<u32, String> {
    match op {
        Operand::BaseDisp { disp: 0, base } => {
            Ok(parse_reg(base).ok_or("bad base register")? as u32)
        }
        Operand::Reg(r) => Ok(parse_reg(r).ok_or("bad register")? as u32),
        _ => Err("expected `(rb)`".into()),
    }
}

fn reg3(a: u16, b: u16, c: u16) -> [Operand; 3] {
    [Operand::Reg(format!("r{a}")), Operand::Reg(format!("r{b}")), Operand::Reg(format!("r{c}"))]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_asm::assemble;

    fn enc(line: &str) -> u32 {
        let img = assemble(&AlphaAsm, line).unwrap();
        u32::from_le_bytes(img.sections[0].bytes[0..4].try_into().unwrap())
    }

    #[test]
    fn operate_register_and_literal() {
        let w = enc("addq r1, r2, r3");
        assert_eq!(w >> 26, 0x10);
        assert_eq!((w >> 21) & 31, 1);
        assert_eq!((w >> 16) & 31, 2);
        assert_eq!(w & 31, 3);
        assert_eq!(w & 0x1000, 0);
        let w = enc("addq r1, 200, r3");
        assert_eq!(w & 0x1000, 0x1000);
        assert_eq!((w >> 13) & 0xff, 200);
    }

    #[test]
    fn memory_and_branches() {
        let w = enc("ldq r5, -8(sp)");
        assert_eq!(w >> 26, 0x29);
        assert_eq!((w >> 21) & 31, 5);
        assert_eq!((w >> 16) & 31, 30);
        assert_eq!(w & 0xffff, 0xfff8);
        // Backwards branch to self: disp = -1.
        let w = enc("x: beq r1, x");
        assert_eq!(w >> 26, 0x39);
        assert_eq!(w & 0x1f_ffff, 0x1f_ffff);
    }

    #[test]
    fn jumps_and_pseudos() {
        let w = enc("ret");
        assert_eq!(w >> 26, 0x1a);
        assert_eq!((w >> 21) & 31, 31);
        assert_eq!((w >> 16) & 31, 26);
        let w = enc("jsr (r27)");
        assert_eq!((w >> 21) & 31, 26);
        assert_eq!((w >> 16) & 31, 27);
        let w = enc("nop");
        assert_eq!(w >> 26, 0x11);
        let w = enc("mov 7, r4");
        assert_eq!(w >> 26, 0x11); // bis with literal
        let w = enc("mov 5000, r4");
        assert_eq!(w >> 26, 0x08); // lda
        let w = enc("clr r9");
        assert_eq!(w & 31, 9);
    }

    #[test]
    fn errors_are_reported() {
        assert!(assemble(&AlphaAsm, "addq r1, 300, r3").is_err());
        assert!(assemble(&AlphaAsm, "ldq r1, 99999(r2)").is_err());
        assert!(assemble(&AlphaAsm, "frobnicate r1").is_err());
        assert!(assemble(&AlphaAsm, "addq r1, r2").is_err());
    }
}
