//! Criterion micro-benchmark behind footnote 5: the cached (translated
//! analog) vs interpreted vs compiled (superblock) backend on the one-min
//! interface.

use criterion::{criterion_group, criterion_main, Criterion};
use lis_core::ONE_MIN;
use lis_runtime::{Backend, Simulator};
use lis_workloads::{spec_of, suite_of};

fn bench_backends(c: &mut Criterion) {
    let w = suite_of("alpha").iter().find(|w| w.name == "sieve").unwrap();
    let image = w.assemble().unwrap();
    let mut group = c.benchmark_group("backend");
    for (name, backend) in [
        ("cached", Backend::Cached),
        ("interpreted", Backend::Interpreted),
        ("compiled", Backend::Compiled),
    ] {
        group.bench_function(name, |b| {
            let mut sim = Simulator::new(spec_of("alpha"), ONE_MIN).unwrap();
            sim.set_backend(backend);
            sim.load_program(&image).unwrap();
            b.iter(|| {
                sim.reset_program(&image).unwrap();
                sim.run_to_halt(u64::MAX).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_backends
}
criterion_main!(benches);
