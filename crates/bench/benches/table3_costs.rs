//! Criterion micro-benchmarks behind Table III: the informational and
//! semantic cost components on the Alpha sieve kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use lis_core::{BuildsetDef, ONE_ALL, ONE_ALL_SPEC, ONE_DECODE, ONE_MIN, STEP_ALL};
use lis_runtime::Simulator;
use lis_workloads::{spec_of, suite_of};

fn bench_cost_components(c: &mut Criterion) {
    let w = suite_of("alpha").iter().find(|w| w.name == "sieve").unwrap();
    let image = w.assemble().unwrap();
    let mut group = c.benchmark_group("table3");
    let cases: [(&str, BuildsetDef); 5] = [
        ("base_one_min", ONE_MIN),
        ("plus_decode_info", ONE_DECODE),
        ("plus_full_info", ONE_ALL),
        ("plus_speculation", ONE_ALL_SPEC),
        ("plus_multiple_calls", STEP_ALL),
    ];
    for (name, bs) in cases {
        group.bench_function(name, |b| {
            let mut sim = Simulator::new(spec_of("alpha"), bs).unwrap();
            sim.load_program(&image).unwrap();
            b.iter(|| {
                sim.reset_program(&image).unwrap();
                sim.run_to_halt(u64::MAX).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cost_components
}
criterion_main!(benches);
