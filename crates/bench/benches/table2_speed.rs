//! Criterion micro-benchmarks behind Table II: one kernel per ISA under
//! representative interfaces. `cargo bench -p lis-bench` runs them; the
//! `tables` binary produces the full table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lis_core::{BuildsetDef, BLOCK_MIN, ONE_ALL, ONE_MIN, STEP_ALL};
use lis_runtime::Simulator;
use lis_workloads::{spec_of, suite_of, ISAS};

fn bench_interfaces(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    for isa in ISAS {
        let w = suite_of(isa).iter().find(|w| w.name == "sieve").unwrap();
        let image = w.assemble().unwrap();
        let cases: [(&str, BuildsetDef); 4] = [
            ("block-min", BLOCK_MIN),
            ("one-min", ONE_MIN),
            ("one-all", ONE_ALL),
            ("step-all", STEP_ALL),
        ];
        for (name, bs) in cases {
            let mut sim = Simulator::new(spec_of(isa), bs).unwrap();
            sim.load_program(&image).unwrap();
            let insts = sim.run_to_halt(u64::MAX).unwrap().insts;
            group.throughput(criterion::Throughput::Elements(insts));
            group.bench_with_input(BenchmarkId::new(isa, name), &bs, |b, bs| {
                let mut sim = Simulator::new(spec_of(isa), *bs).unwrap();
                sim.load_program(&image).unwrap();
                b.iter(|| {
                    sim.reset_program(&image).unwrap();
                    sim.run_to_halt(u64::MAX).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_interfaces
}
criterion_main!(benches);
