//! # lis-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V):
//!
//! * **Table I** — specification sizes and lines per experimental buildset;
//! * **Table II** — simulation speed (MIPS) for the twelve standard
//!   interfaces on the three ISAs (geometric mean over the kernel suite);
//! * **Table III** — the cost of detail, as base-plus-increment costs per
//!   simulated instruction;
//! * **Figure 1** — the five decoupled organizations, run side by side;
//! * **Footnote 5** — interpreted vs block-cached (binary-translation
//!   analog) base cost.
//!
//! Run `cargo run -p lis-bench --release --bin tables -- all` to regenerate
//! everything. Absolute numbers are host-dependent; the paper's *shape*
//! claims (orderings and ratios) are what the harness reports and what the
//! integration tests assert.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod sweep;
pub mod warm;

pub use sweep::{
    resolve_timings, run_sweep, CellResult, RatioRow, SweepCell, SweepConfig, SweepReport,
    BASELINE_BUILDSET,
};
pub use warm::{run_warm, WarmCell, WarmConfig, WarmReport};

use lis_core::{BuildsetDef, Semantic, STANDARD_BUILDSETS};
use lis_runtime::{Backend, Simulator};
use lis_workloads::{spec_of, suite_of, ISAS};
use std::time::Instant;

/// One speed measurement: a buildset on one ISA over the kernel suite.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Simulated millions of instructions per second (geometric mean).
    pub mips: f64,
    /// Nanoseconds per simulated instruction (derived, 1000/mips).
    pub ns_per_inst: f64,
    /// Total instructions simulated while measuring.
    pub insts: u64,
}

/// Minimum dynamic instructions to run per kernel per measurement
/// (overridable via `LIS_BENCH_INSTS`).
fn target_insts() -> u64 {
    match std::env::var("LIS_BENCH_INSTS") {
        Ok(v) => v.parse().unwrap_or(2_000_000),
        Err(_) => 2_000_000,
    }
}

/// Runs one already-loaded simulator to completion once; returns
/// (instructions, seconds). The caller resets it between runs.
fn run_image(sim: &mut Simulator, image: &lis_mem::Image) -> (u64, f64) {
    sim.reset_program(image).expect("kernel loads");
    let start = Instant::now();
    let summary = sim.run_to_halt(u64::MAX).expect("kernel runs to completion");
    let dt = start.elapsed().as_secs_f64();
    assert_eq!(summary.exit_code, 0, "kernel failed");
    (summary.insts, dt)
}

/// Accumulates runs of one kernel until it covers `target` instructions and
/// returns the observed MIPS.
fn sample(sim: &mut Simulator, image: &lis_mem::Image, target: u64) -> (f64, u64) {
    let mut insts = 0u64;
    let mut secs = 0.0f64;
    while insts < target {
        let (i, s) = run_image(sim, image);
        insts += i;
        secs += s;
    }
    (insts as f64 / secs / 1.0e6, insts)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Number of interleaved repetitions per (kernel, buildset) cell.
const REPS: usize = 3;

/// Measures a whole set of buildsets on one ISA at once.
///
/// To keep host-frequency drift from skewing comparisons, the measurement is
/// *interleaved*: for each kernel, all buildsets are sampled back to back,
/// repeatedly; each cell takes the median of its repetitions and the final
/// figure is the geometric mean across kernels — matching the paper's use of
/// geometric means over its benchmark suite.
pub fn measure_set(isa: &str, sets: &[BuildsetDef], backend: Backend) -> Vec<Measurement> {
    let target = target_insts() / REPS as u64;
    let kernels: Vec<_> =
        suite_of(isa).iter().map(|w| w.assemble().expect("kernel assembles")).collect();
    // samples[bs][kernel] = Vec of per-rep MIPS
    let mut samples = vec![vec![Vec::with_capacity(REPS); kernels.len()]; sets.len()];
    let mut insts = vec![0u64; sets.len()];
    for (k, image) in kernels.iter().enumerate() {
        // One warmed simulator per buildset, shared across repetitions so
        // predecode costs amortize (the paper's translation amortization).
        let mut sims: Vec<Simulator> = sets
            .iter()
            .map(|bs| {
                let mut s = Simulator::new(spec_of(isa), *bs).expect("valid buildset");
                s.set_backend(backend);
                s
            })
            .collect();
        // Warm-up (page cache, allocator, host branch history).
        let _ = run_image(&mut sims[0], image);
        for _ in 0..REPS {
            for (b, _) in sets.iter().enumerate() {
                let (mips, i) = sample(&mut sims[b], image, target);
                samples[b][k].push(mips);
                insts[b] += i;
            }
        }
    }
    sets.iter()
        .enumerate()
        .map(|(b, _)| {
            let log_sum: f64 = samples[b].iter().map(|reps| median(reps.clone()).ln()).sum();
            let mips = (log_sum / kernels.len() as f64).exp();
            Measurement { mips, ns_per_inst: 1000.0 / mips, insts: insts[b] }
        })
        .collect()
}

/// Measures one (ISA, buildset, backend) combination over the kernel suite.
pub fn measure(isa: &str, bs: BuildsetDef, backend: Backend) -> Measurement {
    measure_set(isa, &[bs], backend)[0]
}

/// Table II: every standard buildset on every ISA.
pub fn table2(backend: Backend) -> Vec<(BuildsetDef, [Measurement; 3])> {
    let per_isa: Vec<Vec<Measurement>> =
        ISAS.iter().map(|isa| measure_set(isa, &STANDARD_BUILDSETS, backend)).collect();
    STANDARD_BUILDSETS
        .iter()
        .enumerate()
        .map(|(i, bs)| (*bs, [per_isa[0][i], per_isa[1][i], per_isa[2][i]]))
        .collect()
}

/// Table III rows, derived from Table II the way the paper constructs them.
#[derive(Debug, Clone)]
pub struct CostRow {
    /// Row label.
    pub label: &'static str,
    /// Cost (ns per simulated instruction) per ISA, incremental except the
    /// base row.
    pub ns: [f64; 3],
}

/// Derives the cost-of-detail decomposition from Table II measurements.
pub fn table3(t2: &[(BuildsetDef, [Measurement; 3])]) -> Vec<CostRow> {
    let get = |name: &str| -> [f64; 3] {
        let (_, m) = t2.iter().find(|(b, _)| b.name == name).expect("standard buildset");
        [m[0].ns_per_inst, m[1].ns_per_inst, m[2].ns_per_inst]
    };
    let base = get("one-min");
    let sub = |a: [f64; 3], b: [f64; 3]| [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
    // Speculation cost: mean increment over the nospec/spec pairs.
    let spec_pairs = [
        ("block-decode", "block-decode-spec"),
        ("block-all", "block-all-spec"),
        ("one-decode", "one-decode-spec"),
        ("one-all", "one-all-spec"),
        ("step-all", "step-all-spec"),
    ];
    let mut spec = [0.0f64; 3];
    for (a, b) in spec_pairs {
        let d = sub(get(b), get(a));
        for k in 0..3 {
            spec[k] += d[k] / spec_pairs.len() as f64;
        }
    }
    vec![
        CostRow { label: "base cost (one/min)", ns: base },
        CostRow { label: "+ decode information", ns: sub(get("one-decode"), base) },
        CostRow { label: "+ full information", ns: sub(get("one-all"), base) },
        CostRow { label: "+ block-call (savings)", ns: sub(get("block-min"), base) },
        CostRow { label: "+ multiple calls", ns: sub(get("step-all"), get("one-all")) },
        CostRow { label: "+ speculation", ns: spec },
    ]
}

/// Shape checks the paper's qualitative claims against a Table II run.
/// Returns human-readable violations (empty = shape holds).
#[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN would rightly trip the check
pub fn check_shape(t2: &[(BuildsetDef, [Measurement; 3])]) -> Vec<String> {
    let mut problems = Vec::new();
    let get = |name: &str| -> &[Measurement; 3] {
        &t2.iter().find(|(b, _)| b.name == name).expect("standard buildset").1
    };
    for (k, isa) in ISAS.iter().enumerate() {
        let m = |n: &str| get(n)[k].mips;
        // Semantic detail is the largest effect: step-level calls are far
        // slower than one-call interfaces (paper: the dominant factor).
        if !(m("one-all") > 2.0 * m("step-all")) {
            problems.push(format!("{isa}: step detail should cost at least 2x"));
        }
        // Block-level calls must not be slower than per-instruction calls.
        // (The paper sees a large block win from translator scope; our
        // in-process interface crossings are so cheap that the effect is
        // attenuated — see EXPERIMENTS.md — but it must not invert beyond
        // measurement noise.)
        if m("block-min") < 0.92 * m("one-min") || m("block-all") < 0.92 * m("one-all") {
            problems.push(format!("{isa}: block calls slower than per-instruction calls"));
        }
        // Informational detail: min > decode > all at fixed semantic, with a
        // small noise tolerance on the middle step.
        if !(m("one-min") > m("one-all")
            && m("one-min") * 1.02 > m("one-decode")
            && m("one-decode") * 1.02 > m("one-all"))
        {
            problems.push(format!("{isa}: informational ordering violated"));
        }
        // Speculation costs something (averaged over the variant pairs).
        let spec_cost: f64 = [
            m("block-decode") / m("block-decode-spec"),
            m("block-all") / m("block-all-spec"),
            m("one-decode") / m("one-decode-spec"),
            m("one-all") / m("one-all-spec"),
        ]
        .iter()
        .sum::<f64>()
            / 4.0;
        if spec_cost < 1.01 {
            problems.push(format!("{isa}: speculation should not be free"));
        }
        // Headline ratio: lowest vs highest detail is large.
        let ratio = m("block-min") / m("step-all-spec");
        if ratio < 3.0 {
            problems.push(format!("{isa}: lowest/highest ratio only {ratio:.1}x"));
        }
    }
    problems
}

/// Pretty-prints Table II in the paper's layout.
pub fn render_table2(t2: &[(BuildsetDef, [Measurement; 3])]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "Table II: simulation speed (MIPS, geometric mean over kernel suite)");
    let _ = writeln!(out, "{:<38} {:>9} {:>9} {:>9}", "interface", "alpha", "arm", "ppc");
    for (bs, m) in t2 {
        let _ = writeln!(
            out,
            "{:<38} {:>9.2} {:>9.2} {:>9.2}",
            format!("{} ({})", bs.name, bs.describe()),
            m[0].mips,
            m[1].mips,
            m[2].mips
        );
    }
    let best = t2.iter().map(|(_, m)| m[0].mips).fold(f64::MIN, f64::max);
    let worst = t2.iter().map(|(_, m)| m[0].mips).fold(f64::MAX, f64::min);
    let _ = writeln!(
        out,
        "alpha lowest/highest-detail ratio: {:.1}x (paper: up to 14.4x)",
        best / worst
    );
    out
}

/// Pretty-prints Table III.
pub fn render_table3(rows: &[CostRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III: cost of detail (ns per simulated instruction; paper uses host instructions)"
    );
    let _ = writeln!(out, "{:<26} {:>9} {:>9} {:>9}", "component", "alpha", "arm", "ppc");
    for r in rows {
        let _ = writeln!(out, "{:<26} {:>9.1} {:>9.1} {:>9.1}", r.label, r.ns[0], r.ns[1], r.ns[2]);
    }
    out
}

/// Table I data for one ISA.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// ISA name.
    pub isa: &'static str,
    /// Code lines of the ISA description.
    pub isa_lines: usize,
    /// Code lines of derived tooling (assembler + disassembler).
    pub tooling_lines: usize,
    /// Instructions in the description.
    pub instructions: usize,
}

/// Collects Table I: per-ISA rows plus `(buildset count, total buildset
/// lines)` measured from the actual definitions in `lis-core`.
pub fn table1() -> (Vec<Table1Row>, usize, usize) {
    let rows = vec![
        stats_row(lis_isa_alpha::spec_stats()),
        stats_row(lis_isa_arm::spec_stats()),
        stats_row(lis_isa_ppc::spec_stats()),
    ];
    let src = include_str!("../../core/src/buildset.rs");
    let (count, lines) = lis_core::count_macro_blocks(src, "buildset");
    (rows, count, lines)
}

fn stats_row(s: lis_core::SpecStats) -> Table1Row {
    Table1Row {
        isa: s.isa,
        isa_lines: s.isa_description_lines,
        tooling_lines: s.tooling_lines,
        instructions: s.num_instructions,
    }
}

/// Pretty-prints Table I.
pub fn render_table1() -> String {
    use std::fmt::Write;
    let (rows, buildsets, buildset_lines) = table1();
    let mut out = String::new();
    let _ = writeln!(out, "Table I: instruction-set description characteristics");
    let _ = writeln!(
        out,
        "{:<8} {:>18} {:>16} {:>14}",
        "ISA", "description lines", "tooling lines", "instructions"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<8} {:>18} {:>16} {:>14}",
            r.isa, r.isa_lines, r.tooling_lines, r.instructions
        );
    }
    let _ = writeln!(
        out,
        "standard buildsets: {buildsets}; lines per experimental buildset: {:.1} (paper: ~13)",
        buildset_lines as f64 / buildsets as f64
    );
    out
}

/// Backends in ablation order, with their report names.
pub const ABLATION_BACKENDS: [(&str, Backend); 3] = [
    ("cached", Backend::Cached),
    ("interpreted", Backend::Interpreted),
    ("compiled", Backend::Compiled),
];

/// Footnote 5, extended: per-backend base cost. For each ISA, the `one-min`
/// interface measured on every backend, in [`ABLATION_BACKENDS`] order
/// (cached, interpreted, compiled). The compiled backend's superblock
/// chaining shows up here; the block interfaces (where publication is also
/// elided) are ablated by `lis sweep --backends all --time`.
pub fn backend_ablation() -> Vec<(&'static str, [Measurement; 3])> {
    ISAS.iter()
        .map(|isa| {
            let m: Vec<Measurement> = ABLATION_BACKENDS
                .iter()
                .map(|&(_, b)| measure(isa, lis_core::ONE_MIN, b))
                .collect();
            (*isa, [m[0], m[1], m[2]])
        })
        .collect()
}

/// The block-interface ablation behind the compiled backend's headline
/// claim: `block-min` and `block-decode` wall-clock per backend. Returns
/// `(isa, buildset, [cached, interpreted, compiled] MIPS)` rows.
pub fn block_backend_ablation() -> Vec<(&'static str, &'static str, [f64; 3])> {
    let mut out = Vec::new();
    for isa in ISAS {
        for bs in [lis_core::BLOCK_MIN, lis_core::BLOCK_DECODE] {
            let mut mips = [0.0f64; 3];
            for (k, &(_, backend)) in ABLATION_BACKENDS.iter().enumerate() {
                mips[k] = measure(isa, bs, backend).mips;
            }
            out.push((isa, bs.name, mips));
        }
    }
    out
}

/// Record-vs-replay speeds for one ISA (geometric mean over the kernel
/// suite), plus the trace encoding density.
#[derive(Debug, Clone)]
pub struct TraceSpeed {
    /// Execute-driven functional-first + ooo consumer, MIPS.
    pub live_mips: f64,
    /// Recording (functional run + trace encode), MIPS.
    pub record_mips: f64,
    /// Replay MIPS per shard count, in the order requested.
    pub replay_mips: Vec<(usize, f64)>,
    /// Mean encoded trace bytes per instruction.
    pub bytes_per_inst: f64,
}

/// Measures record / replay / live speeds on one ISA over the kernel suite.
///
/// Replay cost excludes the one-time recording: the record-once /
/// replay-many trade the table quantifies is `record_mips` paid once versus
/// `replay_mips` per subsequent timing experiment.
pub fn trace_speed(isa: &str, shards: &[usize]) -> TraceSpeed {
    use lis_timing::{run_functional_first_ooo, CoreConfig, OooConfig};
    use lis_trace::{record, replay_ooo, RecordOptions, ReplayConfig, Trace};

    let target = target_insts() / REPS as u64;
    let spec = spec_of(isa);
    let suite = suite_of(isa);
    let kernels: Vec<_> = suite.iter().map(|w| w.assemble().expect("assembles")).collect();

    // Geometric mean over kernels of the median of REPS samples, where one
    // sample repeats `f` until `target` instructions are covered.
    let geo = |f: &mut dyn FnMut(usize) -> u64| -> f64 {
        let mut log_sum = 0.0;
        for k in 0..kernels.len() {
            let mut reps = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                let mut insts = 0u64;
                let t = Instant::now();
                while insts < target {
                    insts += f(k);
                }
                reps.push(insts as f64 / t.elapsed().as_secs_f64() / 1e6);
            }
            log_sum += median(reps).ln();
        }
        (log_sum / kernels.len() as f64).exp()
    };

    let cfg = CoreConfig::default();
    let ooo = OooConfig::default();
    let live_mips = geo(&mut |k| {
        run_functional_first_ooo(spec, &kernels[k], &cfg, &ooo).expect("kernel runs").insts
    });

    let opts: Vec<RecordOptions> = suite
        .iter()
        .map(|w| RecordOptions { kernel: w.name.to_string(), ..Default::default() })
        .collect();
    let record_mips = geo(&mut |k| {
        let mut sink = Vec::new();
        record(spec, &kernels[k], &mut sink, &opts[k]).expect("records").insts
    });

    let mut total_bytes = 0u64;
    let mut total_insts = 0u64;
    let traces: Vec<Trace> = kernels
        .iter()
        .zip(&opts)
        .map(|(image, o)| {
            let mut bytes = Vec::new();
            record(spec, image, &mut bytes, o).expect("records");
            total_bytes += bytes.len() as u64;
            let trace = Trace::read_from(bytes.as_slice()).expect("reads back");
            total_insts += trace.insts();
            trace
        })
        .collect();

    let replay_mips = shards
        .iter()
        .map(|&n| {
            let rcfg = ReplayConfig { shards: n, ..Default::default() };
            let mips = geo(&mut |k| replay_ooo(spec, &traces[k], &rcfg).expect("replays").insts);
            (n, mips)
        })
        .collect();

    TraceSpeed {
        live_mips,
        record_mips,
        replay_mips,
        bytes_per_inst: total_bytes as f64 / total_insts.max(1) as f64,
    }
}

/// Semantic group index for sorting (block, one, step).
pub fn semantic_rank(bs: &BuildsetDef) -> u8 {
    match bs.semantic {
        Semantic::Block => 0,
        Semantic::One => 1,
        Semantic::Step => 2,
    }
}

/// Design-choice ablation: how the maximum predecoded-block length affects
/// block-interface speed. Returns `(max_block, MIPS)` pairs for one ISA over
/// the kernel suite.
pub fn block_size_ablation(isa: &str, sizes: &[usize]) -> Vec<(usize, f64)> {
    let target = target_insts() / REPS as u64;
    let kernels: Vec<_> =
        suite_of(isa).iter().map(|w| w.assemble().expect("kernel assembles")).collect();
    let mut out = Vec::new();
    for &size in sizes {
        let mut log_sum = 0.0;
        for image in &kernels {
            let mut sim = Simulator::new(spec_of(isa), lis_core::BLOCK_MIN).unwrap();
            sim.set_max_block(size);
            let _ = run_image(&mut sim, image);
            let mut reps = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                reps.push(sample(&mut sim, image, target).0);
            }
            log_sum += median(reps).ln();
        }
        out.push((size, (log_sum / kernels.len() as f64).exp()));
    }
    out
}

/// Ablation: the fast-forward entry point (no publication at all) vs the
/// block interface with minimal publication. Returns `(ff MIPS, block MIPS)`
/// per ISA.
pub fn fast_forward_ablation() -> Vec<(&'static str, f64, f64)> {
    let target = target_insts() / REPS as u64;
    ISAS.iter()
        .map(|isa| {
            let kernels: Vec<_> =
                suite_of(isa).iter().map(|w| w.assemble().expect("assembles")).collect();
            let mut ff_log = 0.0;
            let mut blk_log = 0.0;
            for image in &kernels {
                let mut sim = Simulator::new(spec_of(isa), lis_core::BLOCK_MIN).unwrap();
                let _ = run_image(&mut sim, image);
                let mut ff_reps = Vec::new();
                let mut blk_reps = Vec::new();
                for _ in 0..REPS {
                    // Fast-forward sample.
                    let mut insts = 0u64;
                    let mut secs = 0.0;
                    while insts < target {
                        sim.reset_program(image).unwrap();
                        let t = Instant::now();
                        insts += sim.fast_forward(u64::MAX).expect("block interface");
                        secs += t.elapsed().as_secs_f64();
                    }
                    ff_reps.push(insts as f64 / secs / 1e6);
                    // Regular block sample.
                    blk_reps.push(sample(&mut sim, image, target).0);
                }
                ff_log += median(ff_reps).ln();
                blk_log += median(blk_reps).ln();
            }
            let n = kernels.len() as f64;
            (*isa, (ff_log / n).exp(), (blk_log / n).exp())
        })
        .collect()
}
