//! Regenerates the paper's tables and figures from the command line.
//!
//! ```text
//! cargo run -p lis-bench --release --bin tables -- [table1|table2|table3|orgs|ablate-backend|all]
//! ```
//!
//! Set `LIS_BENCH_INSTS` to change the per-kernel instruction target
//! (default 2,000,000).

use lis_bench::{
    backend_ablation, block_backend_ablation, block_size_ablation, check_shape,
    fast_forward_ablation, render_table1, render_table2, render_table3, table2, table3,
    trace_speed,
};
use lis_runtime::Backend;
use lis_timing::{
    run_functional_first, run_functional_first_ooo, run_integrated,
    run_speculative_functional_first, run_timing_directed, run_timing_first, CoreConfig, OooConfig,
};
use lis_workloads::{spec_of, suite_of, ISAS};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "table1" => table1_cmd(),
        "table2" => table2_cmd(),
        "table3" => table3_cmd(),
        "orgs" => orgs_cmd(),
        "ablate-backend" => ablate_cmd(),
        "ablate-blocksize" => ablate_blocksize_cmd(),
        "ablate-ff" => ablate_ff_cmd(),
        "trace" => trace_cmd(),
        "all" => {
            table1_cmd();
            println!();
            table2_cmd();
            println!();
            orgs_cmd();
            println!();
            ablate_cmd();
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!(
                "usage: tables [table1|table2|table3|orgs|ablate-backend|ablate-blocksize|ablate-ff|trace|all]"
            );
            std::process::exit(2);
        }
    }
}

fn table1_cmd() {
    print!("{}", render_table1());
}

fn table2_cmd() {
    eprintln!("measuring 12 interfaces x 3 ISAs (this takes a little while)...");
    let t2 = table2(Backend::Cached);
    print!("{}", render_table2(&t2));
    println!();
    print!("{}", render_table3(&table3(&t2)));
    let problems = check_shape(&t2);
    if problems.is_empty() {
        println!("shape check: all of the paper's qualitative claims hold");
    } else {
        println!("shape check: {} issue(s):", problems.len());
        for p in problems {
            println!("  - {p}");
        }
    }
}

fn table3_cmd() {
    eprintln!("measuring the interfaces Table III depends on...");
    let t2 = table2(Backend::Cached);
    print!("{}", render_table3(&table3(&t2)));
}

fn orgs_cmd() {
    println!("Figure 1: decoupled simulator organizations (kernel: sort)");
    let cfg = CoreConfig::default();
    for isa in ISAS {
        println!("[{isa}]");
        let w = suite_of(isa).iter().find(|w| w.name == "sort").expect("sort kernel");
        let image = w.assemble().expect("kernel assembles");
        let spec = spec_of(isa);
        let reports = [
            run_integrated(spec, &image, &cfg).expect("runs"),
            run_functional_first(spec, &image, &cfg).expect("runs"),
            run_functional_first_ooo(spec, &image, &cfg, &OooConfig::default()).expect("runs"),
            run_timing_directed(spec, &image, &cfg).expect("runs"),
            run_timing_first(spec, &image, &cfg, None).expect("runs"),
            run_speculative_functional_first(spec, &image, &cfg, &[]).expect("runs"),
        ];
        for r in &reports {
            println!("  {r}");
        }
    }
}

fn ablate_cmd() {
    eprintln!("footnote 5: backend base cost on one-min, plus block interfaces...");
    println!("Backend ablation (one/min interface): cached | interpreted | compiled");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "ISA", "cached", "interp", "compiled", "cach/int", "comp/cach"
    );
    for (isa, m) in backend_ablation() {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>9.2}x {:>9.2}x",
            isa,
            m[0].mips,
            m[1].mips,
            m[2].mips,
            m[0].mips / m[1].mips,
            m[2].mips / m[0].mips
        );
    }
    println!("(paper footnote 5: interpreted base cost ~2x the translated base cost)");
    println!();
    println!("Block-interface ablation (superblock chaining + publication elision)");
    println!(
        "{:<8} {:<14} {:>12} {:>12} {:>12} {:>10}",
        "ISA", "interface", "cached", "interp", "compiled", "comp/cach"
    );
    for (isa, bs, mips) in block_backend_ablation() {
        println!(
            "{:<8} {:<14} {:>12.2} {:>12.2} {:>12.2} {:>9.2}x",
            isa,
            bs,
            mips[0],
            mips[1],
            mips[2],
            mips[2] / mips[0]
        );
    }
}

fn ablate_blocksize_cmd() {
    eprintln!("design ablation: maximum predecoded-block length (block-min, alpha)...");
    println!("Block-size ablation (alpha, block-min interface)");
    println!("{:<12} {:>10}", "max block", "MIPS");
    for (size, mips) in block_size_ablation("alpha", &[1, 2, 4, 8, 16, 32, 64, 128]) {
        println!("{:<12} {:>10.2}", size, mips);
    }
    println!("(a max length of 1 degenerates the block interface to per-instruction calls)");
}

fn trace_cmd() {
    eprintln!("record-once / replay-anywhere speeds over the kernel suite...");
    println!("Trace record vs replay speed (MIPS, geometric mean over kernel suite)");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "ISA", "live ooo", "record", "replay x1", "replay x4", "B/inst"
    );
    for isa in ISAS {
        let t = trace_speed(isa, &[1, 4]);
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            isa,
            t.live_mips,
            t.record_mips,
            t.replay_mips[0].1,
            t.replay_mips[1].1,
            t.bytes_per_inst
        );
    }
    println!("(recording is paid once; every later timing experiment replays at trace speed)");
}

fn ablate_ff_cmd() {
    eprintln!("ablation: fast-forward entry point vs block interface...");
    println!("Fast-forward ablation: execute-N-instructions call vs block-min publication");
    println!("{:<8} {:>14} {:>14} {:>8}", "ISA", "ff MIPS", "block MIPS", "ratio");
    for (isa, ff, blk) in fast_forward_ablation() {
        println!("{:<8} {:>14.2} {:>14.2} {:>7.2}x", isa, ff, blk, ff / blk);
    }
    println!(
        "(the paper's sampling discussion: fast-forward needs \"little, if any, information\")"
    );
}
