//! The parallel full-matrix sweep engine behind `lis sweep`.
//!
//! The paper's core result is a *matrix* — 12 standard buildsets × 3 ISAs,
//! with detail costing up to 14.4× — and this module produces that whole
//! matrix in one command. Every (buildset × ISA × kernel × backend) cell is
//! an isolated job: a fresh simulator, run to halt, its [`SimStats`]
//! captured. Jobs are distributed over a pool of `std::thread` workers
//! pulling from a shared atomic counter (work stealing without a dependency)
//! and the per-cell results are re-assembled in matrix order, so the output
//! is independent of scheduling.
//!
//! ## Why ratios are bit-identical
//!
//! The sweep's headline table is *detail-cost ratios*, not MIPS. Each cell's
//! cost is [`SimStats::detail_units`] per retired instruction — interface
//! calls + published field stores + operand-set publications + undo records,
//! all deterministic counters — normalized to the `block-min` cell of the
//! same (ISA, kernel, backend) block, the paper's 1.0 baseline. Because no
//! wall-clock enters the metric, `BENCH_sweep.json` is byte-identical across
//! repeated runs, hosts, and any `--jobs` count. Wall-clock MIPS can be
//! added per cell with [`SweepConfig::measure_time`], which is explicitly
//! opt-in because it forfeits that guarantee.

use crate::semantic_rank;
use lis_core::{BuildsetDef, JsonObj, STANDARD_BUILDSETS};
use lis_harness::{backend_name, Watchdog};
use lis_runtime::{Backend, SimStats, SimStop, Simulator};
use lis_timing::{run_functional_first_ooo, CoreConfig, OooConfig, TimingConfig, TimingReport};
use lis_workloads::{spec_of, suite_of, ISAS};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The buildset every block is normalized against (the paper's 1.0 row).
pub const BASELINE_BUILDSET: &str = "block-min";

/// Instructions between watchdog checks when driving one cell.
const CELL_STRIDE: u64 = 65_536;

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads; 0 = one per available core. Always clamped to the
    /// number of cells.
    pub jobs: usize,
    /// Kernel subset (empty = the full suite). Names are validated before
    /// any thread spawns.
    pub kernels: Vec<String>,
    /// Backends to sweep (default: cached only).
    pub backends: Vec<Backend>,
    /// Per-cell instruction budget (kernels halt far below it; the budget
    /// is a runaway guard, not a truncation).
    pub max_insts: u64,
    /// Per-cell wall-clock watchdog; a wedged cell is marked, not hung on.
    pub deadline: Option<Duration>,
    /// Include wall-clock timing (per-cell seconds and MIPS, pool size,
    /// elapsed) in the JSON. Off by default: timing is host noise and
    /// breaks the bit-identical-output guarantee.
    pub measure_time: bool,
    /// Extra attempts for a cell whose run panics. Each retry runs one rung
    /// down the backend demotion ladder after a deterministic backoff; a
    /// cell that exhausts the budget is reported crashed, and the pool
    /// survives either way.
    pub retries: u32,
    /// Test hook: an `isa/buildset/kernel/backend` label whose first attempt
    /// deliberately panics, proving the isolation path end to end (the CI
    /// smoke test sets this through `LIS_SWEEP_PANIC`). With several timing
    /// presets the label matches one cell per preset.
    pub panic_cell: Option<String>,
    /// Timing presets to cross with the matrix (default: `classic` only).
    /// Every cell re-times its kernel under its preset's out-of-order model;
    /// the functional counters are preset-independent by construction.
    pub timings: Vec<TimingConfig>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            jobs: 0,
            kernels: Vec::new(),
            backends: vec![Backend::Cached],
            max_insts: 50_000_000,
            deadline: Some(Duration::from_secs(120)),
            measure_time: false,
            retries: 2,
            panic_cell: None,
            timings: vec![TimingConfig::CLASSIC],
        }
    }
}

/// One cell of the sweep matrix, before execution.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell {
    /// ISA name.
    pub isa: &'static str,
    /// Interface buildset.
    pub buildset: BuildsetDef,
    /// Kernel name.
    pub kernel: &'static str,
    /// Execution backend.
    pub backend: Backend,
    /// Timing preset for the cell's out-of-order re-timing.
    pub timing: TimingConfig,
}

/// One executed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// ISA name.
    pub isa: &'static str,
    /// Buildset name.
    pub buildset: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Execution backend.
    pub backend: Backend,
    /// Final engine statistics.
    pub stats: SimStats,
    /// Whether the kernel ran to completion.
    pub halted: bool,
    /// Guest exit code.
    pub exit_code: i64,
    /// Whether the per-cell watchdog expired.
    pub deadline_expired: bool,
    /// Fault that ended the run, rendered, if any.
    pub fault: Option<String>,
    /// Deterministic detail-work units per retired instruction.
    pub units_per_inst: f64,
    /// `units_per_inst` normalized to this block's `block-min` cell.
    pub ratio: f64,
    /// Timing preset the cell was re-timed under.
    pub timing: TimingConfig,
    /// Out-of-order model report under `timing` (absent when the functional
    /// pass faulted, wedged, or crashed).
    pub timing_report: Option<TimingReport>,
    /// Wall-clock seconds for the cell (reported only with `measure_time`).
    pub secs: f64,
    /// Attempts that panicked before this result (0 for a clean cell).
    pub crashes: u32,
    /// Rendered crash messages, one per failed attempt.
    pub crash: Option<String>,
}

/// One row of the aggregated ratio table: a (buildset, backend) pair with
/// per-ISA geometric means over the kernel set.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Buildset name.
    pub buildset: &'static str,
    /// Execution backend.
    pub backend: Backend,
    /// Geometric-mean detail units per instruction, indexed like [`ISAS`].
    pub units_per_inst: [f64; 3],
    /// Geometric-mean ratio vs `block-min`, indexed like [`ISAS`].
    pub ratio: [f64; 3],
}

/// Everything one sweep produced.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell results, in matrix order (backend, ISA, buildset, kernel).
    pub cells: Vec<CellResult>,
    /// Aggregated ratio table, one row per (buildset, backend).
    pub table: Vec<RatioRow>,
    /// Kernels actually swept.
    pub kernels: Vec<&'static str>,
    /// Backends actually swept.
    pub backends: Vec<Backend>,
    /// Timing presets actually swept.
    pub timings: Vec<TimingConfig>,
    /// Instruction budget per cell.
    pub max_insts: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Whole-sweep wall-clock seconds.
    pub elapsed_secs: f64,
    /// Whether timing fields belong in the JSON.
    pub measure_time: bool,
}

/// Resolves a requested job count against the cell count: 0 means one per
/// available core, and the result is always within `[1, cells]`. The policy
/// lives in [`lis_harness::resolve_jobs`] so the sweep pool and the service
/// scheduler share one derivation; this thin alias keeps the historical
/// bench-crate entry point.
pub fn resolve_jobs(requested: usize, cells: usize) -> usize {
    lis_harness::resolve_jobs(requested, cells)
}

/// Validates a kernel subset against the suite (which is identical across
/// ISAs by construction). Empty means the full suite.
///
/// # Errors
///
/// A human-readable message naming the unknown kernel and the valid names.
pub fn resolve_kernels(requested: &[String]) -> Result<Vec<&'static str>, String> {
    let all: Vec<&'static str> = suite_of("alpha").iter().map(|w| w.name).collect();
    if requested.is_empty() {
        return Ok(all);
    }
    let mut out = Vec::with_capacity(requested.len());
    for k in requested {
        match all.iter().find(|n| **n == k.as_str()) {
            Some(n) => out.push(*n),
            None => return Err(format!("unknown kernel '{k}' (valid: {})", all.join(", "))),
        }
    }
    Ok(out)
}

/// Parses a comma-separated timing-preset list against the catalog. Empty
/// means `classic` only.
///
/// # Errors
///
/// A human-readable message naming the unknown preset and the valid names.
pub fn resolve_timings(requested: &[String]) -> Result<Vec<TimingConfig>, String> {
    if requested.is_empty() {
        return Ok(vec![TimingConfig::CLASSIC]);
    }
    let mut out = Vec::with_capacity(requested.len());
    for name in requested {
        match TimingConfig::named(name) {
            Some(t) => out.push(t),
            None => {
                return Err(format!(
                    "unknown timing preset '{name}' (valid: {})",
                    TimingConfig::preset_names()
                ))
            }
        }
    }
    Ok(out)
}

/// Builds the full cell list in canonical matrix order: the timing preset is
/// the outermost axis, so a one-preset sweep keeps the historical order.
pub fn sweep_cells(
    kernels: &[&'static str],
    backends: &[Backend],
    timings: &[TimingConfig],
) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(
        timings.len() * backends.len() * ISAS.len() * STANDARD_BUILDSETS.len() * kernels.len(),
    );
    for &timing in timings {
        for &backend in backends {
            for isa in ISAS {
                for &buildset in &STANDARD_BUILDSETS {
                    for &kernel in kernels {
                        cells.push(SweepCell { isa, buildset, kernel, backend, timing });
                    }
                }
            }
        }
    }
    cells
}

/// Canonical `isa/buildset/kernel/backend` label of a cell.
fn cell_label(cell: &SweepCell) -> String {
    format!("{}/{}/{}/{}", cell.isa, cell.buildset.name, cell.kernel, backend_name(cell.backend))
}

/// FNV-1a over the cell label: a stable backoff seed that depends only on
/// the cell's identity, never on scheduling (std's `DefaultHasher` is not
/// guaranteed stable across releases).
fn cell_seed(label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs one isolated cell: fresh simulator, run to halt under the budget and
/// the per-cell watchdog (the same [`Watchdog`] the chaos harness uses).
/// `attempt` > 0 is a retry after a panic and runs that many rungs down the
/// backend demotion ladder — a crash in backend machinery must not cost the
/// cell when a simpler backend can still produce it.
fn run_cell(cell: &SweepCell, cfg: &SweepConfig, attempt: u32) -> CellResult {
    let label = cell_label(cell);
    if attempt == 0 && cfg.panic_cell.as_deref() == Some(label.as_str()) {
        panic!("deliberate panic in cell {label}");
    }
    let mut backend = cell.backend;
    for _ in 0..attempt {
        if let Some(b) = backend.demoted() {
            backend = b;
        }
    }
    let image = lis_workloads::kernel(cell.isa, cell.kernel)
        .expect("kernel validated before dispatch")
        .assemble()
        .expect("suite kernels assemble");
    let mut sim =
        Simulator::new(spec_of(cell.isa), cell.buildset).expect("standard buildsets are valid");
    sim.set_backend(backend);
    sim.load_program(&image).expect("suite kernels load");

    let mut watchdog = Watchdog::new(cfg.deadline);
    let t0 = Instant::now();
    let mut deadline_expired = false;
    let mut fault = None;
    loop {
        if sim.state.halted || sim.stats.insts >= cfg.max_insts {
            break;
        }
        if watchdog.expired() {
            deadline_expired = true;
            break;
        }
        let budget = CELL_STRIDE.min(cfg.max_insts - sim.stats.insts);
        match sim.run_to_halt(budget) {
            Ok(_) => break,
            Err(SimStop::MaxInsts) => continue,
            Err(SimStop::Deadline) => {
                deadline_expired = true;
                break;
            }
            Err(SimStop::Fault(f)) => {
                fault = Some(f.to_string());
                break;
            }
            Err(other) => {
                fault = Some(format!("{other:?}"));
                break;
            }
        }
    }
    let mut secs = t0.elapsed().as_secs_f64();
    let stats = sim.stats;
    let halted = sim.state.halted;
    let exit_code = sim.state.exit_code;
    // With `--time`, a single pass over these kernels (a few thousand
    // dynamic instructions) is dominated by construction and translation,
    // not execution. Re-run the program to a steady-state instruction
    // floor, timing only the execution, and scale `secs` so the cell's
    // insts/secs is the steady-state rate. The deterministic counters
    // above are untouched — they come from the first, canonical pass.
    if cfg.measure_time && fault.is_none() && !deadline_expired && halted {
        const TIME_FLOOR: u64 = 1_000_000;
        let mut timed_insts = 0u64;
        let mut timed_secs = 0.0f64;
        while timed_insts < TIME_FLOOR && !watchdog.expired() {
            if sim.reset_program(&image).is_err() {
                break;
            }
            let before = sim.stats.insts;
            let t1 = Instant::now();
            if sim.run_to_halt(cfg.max_insts).is_err() {
                break;
            }
            timed_secs += t1.elapsed().as_secs_f64();
            timed_insts += sim.stats.insts - before;
        }
        if timed_insts > 0 && timed_secs > 0.0 {
            secs = stats.insts as f64 * timed_secs / timed_insts as f64;
        }
    }
    let units_per_inst =
        if stats.insts == 0 { 0.0 } else { stats.detail_units() as f64 / stats.insts as f64 };
    // Re-time the kernel under the cell's preset: a separate functional-first
    // out-of-order pass whose component selection is the only variable. A
    // pure function of (ISA, kernel, preset) — deterministic across jobs and
    // hosts like every other counter in the cell.
    let timing_report = if halted && fault.is_none() && !deadline_expired {
        let core = CoreConfig { timing: cell.timing, ..CoreConfig::default() };
        run_functional_first_ooo(spec_of(cell.isa), &image, &core, &OooConfig::default()).ok()
    } else {
        None
    };
    CellResult {
        isa: cell.isa,
        buildset: cell.buildset.name,
        kernel: cell.kernel,
        backend: cell.backend,
        stats,
        halted,
        exit_code,
        deadline_expired,
        fault,
        units_per_inst,
        ratio: 0.0,
        timing: cell.timing,
        timing_report,
        secs,
        crashes: 0,
        crash: None,
    }
}

/// [`run_cell`] under panic isolation: up to `1 + retries` attempts with
/// deterministic backoff, each retry one backend rung lower. A cell that
/// exhausts the budget becomes a structured crashed result — the pool and
/// the rest of the matrix are never at risk.
fn run_cell_isolated(cell: &SweepCell, cfg: &SweepConfig) -> CellResult {
    let label = cell_label(cell);
    let (result, attempts) =
        lis_harness::run_with_retry(cfg.retries, cell_seed(&label), |attempt| {
            run_cell(cell, cfg, attempt)
        });
    let crashes = attempts.len() as u32;
    let crash = if attempts.is_empty() { None } else { Some(attempts.join("; ")) };
    match result {
        Some(mut r) => {
            r.crashes = crashes;
            r.crash = crash;
            r
        }
        None => CellResult {
            isa: cell.isa,
            buildset: cell.buildset.name,
            kernel: cell.kernel,
            backend: cell.backend,
            stats: SimStats::default(),
            halted: false,
            exit_code: 0,
            deadline_expired: false,
            fault: None,
            units_per_inst: 0.0,
            ratio: 0.0,
            timing: cell.timing,
            timing_report: None,
            secs: 0.0,
            crashes,
            crash,
        },
    }
}

fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Runs the whole sweep: builds the matrix, executes every cell across the
/// worker pool, normalizes ratios, and aggregates the table.
///
/// # Errors
///
/// A usage-level message (unknown kernel, empty backend list) before any
/// work starts; cell-level trouble (fault, deadline) is recorded in the
/// cell, never an error.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, String> {
    if cfg.backends.is_empty() {
        return Err("no backends selected".into());
    }
    if cfg.timings.is_empty() {
        return Err("no timing presets selected".into());
    }
    let kernels = resolve_kernels(&cfg.kernels)?;
    let cells = sweep_cells(&kernels, &cfg.backends, &cfg.timings);
    let jobs = resolve_jobs(cfg.jobs, cells.len());
    let t0 = Instant::now();

    // Work sharing: workers pull the next cell index from a shared counter,
    // so a slow cell (step-all-spec) never serializes the fast ones behind
    // it. Results carry their index and are re-sorted into matrix order —
    // the output never depends on which worker ran what.
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, CellResult)>();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let cells = &cells;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                if tx.send((i, run_cell_isolated(&cells[i], cfg))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut indexed: Vec<(usize, CellResult)> = rx.into_iter().collect();
    indexed.sort_by_key(|(i, _)| *i);
    let mut results: Vec<CellResult> = indexed.into_iter().map(|(_, r)| r).collect();

    // Normalize: each (ISA, kernel, backend, timing) block against its own
    // block-min cell — the paper's 1.0 baseline. (The functional counters
    // are preset-independent; keying on the preset keeps each slice
    // self-contained anyway.)
    let mut baseline: HashMap<(&str, &str, &str, &str), f64> = HashMap::new();
    for c in &results {
        if c.buildset == BASELINE_BUILDSET {
            baseline.insert(
                (c.isa, c.kernel, backend_name(c.backend), c.timing.name),
                c.units_per_inst,
            );
        }
    }
    for c in &mut results {
        let base = baseline
            .get(&(c.isa, c.kernel, backend_name(c.backend), c.timing.name))
            .copied()
            .unwrap_or_default();
        c.ratio = if base > 0.0 { c.units_per_inst / base } else { 0.0 };
    }

    // Aggregate: geometric mean over kernels per (buildset, backend, ISA).
    let mut table = Vec::new();
    for &backend in &cfg.backends {
        for bs in &STANDARD_BUILDSETS {
            let mut upi = [0.0f64; 3];
            let mut ratio = [0.0f64; 3];
            for (k, isa) in ISAS.iter().enumerate() {
                let block: Vec<&CellResult> = results
                    .iter()
                    .filter(|c| c.buildset == bs.name && c.isa == *isa && c.backend == backend)
                    .collect();
                upi[k] = geomean(&block.iter().map(|c| c.units_per_inst).collect::<Vec<_>>());
                ratio[k] = geomean(&block.iter().map(|c| c.ratio).collect::<Vec<_>>());
            }
            table.push(RatioRow { buildset: bs.name, backend, units_per_inst: upi, ratio });
        }
    }

    Ok(SweepReport {
        cells: results,
        table,
        kernels,
        backends: cfg.backends.clone(),
        timings: cfg.timings.clone(),
        max_insts: cfg.max_insts,
        jobs,
        elapsed_secs: t0.elapsed().as_secs_f64(),
        measure_time: cfg.measure_time,
    })
}

fn json_str_array<S: AsRef<str>>(items: &[S]) -> String {
    let mut out = String::from("[");
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        lis_core::write_json_str(&mut out, s.as_ref());
    }
    out.push(']');
    out
}

/// Renders the whole sweep as one JSON document (`BENCH_sweep.json`).
/// Deterministic by construction unless `measure_time` was set.
pub fn to_json(r: &SweepReport) -> String {
    let mut o = JsonObj::new();
    o.str("schema", "lis-sweep-v1");
    o.str("baseline", BASELINE_BUILDSET);
    o.raw("isas", &json_str_array(&ISAS));
    o.raw(
        "buildsets",
        &json_str_array(&STANDARD_BUILDSETS.iter().map(|b| b.name).collect::<Vec<_>>()),
    );
    o.raw("kernels", &json_str_array(&r.kernels));
    o.raw(
        "backends",
        &json_str_array(&r.backends.iter().map(|b| backend_name(*b)).collect::<Vec<_>>()),
    );
    o.raw("timings", &json_str_array(&r.timings.iter().map(|t| t.name).collect::<Vec<_>>()));
    o.u64("max_insts", r.max_insts);
    if r.measure_time {
        o.u64("jobs", r.jobs as u64);
        o.f64("elapsed_secs", r.elapsed_secs);
    }

    let mut cells = String::from("[");
    for (i, c) in r.cells.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        let mut co = JsonObj::new();
        co.str("isa", c.isa)
            .str("buildset", c.buildset)
            .str("kernel", c.kernel)
            .str("backend", backend_name(c.backend))
            .bool("halted", c.halted)
            .i64("exit_code", c.exit_code)
            .u64("detail_units", c.stats.detail_units())
            .f64("units_per_inst", c.units_per_inst)
            .f64("ratio", c.ratio)
            .raw("stats", &c.stats.to_json());
        {
            let mut tim = JsonObj::new();
            tim.str("preset", c.timing.name)
                .str("predictor", c.timing.predictor.name())
                .str("replacement", c.timing.replacement.name())
                .str("prefetcher", c.timing.prefetcher.name());
            if let Some(tr) = &c.timing_report {
                tim.u64("cycles", tr.cycles)
                    .u64("insts", tr.insts)
                    .f64("ipc", tr.ipc())
                    .u64("icache_misses", tr.icache_misses)
                    .u64("dcache_misses", tr.dcache_misses)
                    .u64("mispredicts", tr.mispredicts);
            }
            co.raw("timing", &tim.finish());
        }
        if c.deadline_expired {
            co.bool("deadline_expired", true);
        }
        if let Some(f) = &c.fault {
            co.str("fault", f);
        }
        if c.crashes > 0 {
            co.u64("crashes", u64::from(c.crashes));
            if let Some(msg) = &c.crash {
                co.str("crash", msg);
            }
        }
        if r.measure_time {
            co.f64("secs", c.secs);
            co.f64("mips", c.stats.insts as f64 / c.secs.max(1e-9) / 1e6);
        }
        cells.push_str(&co.finish());
    }
    cells.push(']');
    o.raw("cells", &cells);

    let mut table = String::from("[");
    for (i, row) in r.table.iter().enumerate() {
        if i > 0 {
            table.push(',');
        }
        let mut to = JsonObj::new();
        to.str("buildset", row.buildset).str("backend", backend_name(row.backend));
        for (k, isa) in ISAS.iter().enumerate() {
            to.f64(&format!("units_per_inst_{isa}"), row.units_per_inst[k]);
            to.f64(&format!("ratio_{isa}"), row.ratio[k]);
        }
        table.push_str(&to.finish());
    }
    table.push(']');
    o.raw("table", &table);
    o.finish()
}

/// The per-backend cost summary written to `BENCH_backend.json`: for every
/// (backend, buildset) pair, total deterministic `detail_units`, total
/// instructions, and units-per-instruction aggregated over every ISA and
/// kernel of the sweep. Pure counters — byte-identical across runs and job
/// counts, like the unit fields of [`to_json`].
pub fn backend_json(r: &SweepReport) -> String {
    let mut o = JsonObj::new();
    o.str("schema", "lis-backend-v1");
    o.raw(
        "backends",
        &json_str_array(&r.backends.iter().map(|b| backend_name(*b)).collect::<Vec<_>>()),
    );
    let mut rows = String::from("[");
    let mut first = true;
    for &backend in &r.backends {
        let total_units: u64 =
            r.cells.iter().filter(|c| c.backend == backend).map(|c| c.stats.detail_units()).sum();
        let total_insts: u64 =
            r.cells.iter().filter(|c| c.backend == backend).map(|c| c.stats.insts).sum();
        let mut bo = JsonObj::new();
        bo.str("backend", backend_name(backend))
            .str("buildset", "*")
            .u64("detail_units", total_units)
            .u64("insts", total_insts)
            .f64("units_per_inst", total_units as f64 / total_insts.max(1) as f64);
        if !first {
            rows.push(',');
        }
        first = false;
        rows.push_str(&bo.finish());
        for bs in &STANDARD_BUILDSETS {
            let sel = |c: &&CellResult| c.backend == backend && c.buildset == bs.name;
            let units: u64 = r.cells.iter().filter(sel).map(|c| c.stats.detail_units()).sum();
            let insts: u64 = r.cells.iter().filter(sel).map(|c| c.stats.insts).sum();
            let mut bo = JsonObj::new();
            bo.str("backend", backend_name(backend))
                .str("buildset", bs.name)
                .u64("detail_units", units)
                .u64("insts", insts)
                .f64("units_per_inst", units as f64 / insts.max(1) as f64);
            rows.push(',');
            rows.push_str(&bo.finish());
        }
    }
    rows.push(']');
    o.raw("rows", &rows);
    o.finish()
}

/// Renders the Tables I–III analog as a markdown report.
pub fn render_markdown(r: &SweepReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "# LIS full-matrix sweep\n");
    let _ = writeln!(
        out,
        "{} cells ({} buildsets x {} ISAs x {} kernels x {} backend(s) x {} timing \
         preset(s)), normalized to `{}` = 1.0.\n",
        r.cells.len(),
        STANDARD_BUILDSETS.len(),
        ISAS.len(),
        r.kernels.len(),
        r.backends.len(),
        r.timings.len(),
        BASELINE_BUILDSET
    );

    let crashed: Vec<&CellResult> = r.cells.iter().filter(|c| c.crashes > 0).collect();
    if !crashed.is_empty() {
        let _ = writeln!(
            out,
            "**{} cell(s) crashed and were retried** ({} never recovered).\n",
            crashed.len(),
            crashed.iter().filter(|c| !c.halted).count()
        );
    }

    let _ = writeln!(out, "## Table I analog: specification sizes\n");
    let _ = writeln!(out, "```\n{}```\n", crate::render_table1());

    for &backend in &r.backends {
        let rows: Vec<&RatioRow> = r.table.iter().filter(|row| row.backend == backend).collect();
        let _ =
            writeln!(out, "## Table II analog: detail cost ({} backend)\n", backend_name(backend));
        let _ = writeln!(
            out,
            "Deterministic interface-work units per instruction (calls + published \
             values + operand sets + undo records); ratio vs `{BASELINE_BUILDSET}`.\n"
        );
        let _ = writeln!(
            out,
            "| interface | alpha units/inst | arm units/inst | ppc units/inst \
             | alpha | arm | ppc |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        let mut sorted = rows.clone();
        sorted.sort_by_key(|row| {
            let idx = STANDARD_BUILDSETS.iter().position(|b| b.name == row.buildset);
            let bs = STANDARD_BUILDSETS.iter().find(|b| b.name == row.buildset).expect("known");
            (semantic_rank(bs), idx)
        });
        for row in &sorted {
            let _ = writeln!(
                out,
                "| {} | {:.2} | {:.2} | {:.2} | {:.2}x | {:.2}x | {:.2}x |",
                row.buildset,
                row.units_per_inst[0],
                row.units_per_inst[1],
                row.units_per_inst[2],
                row.ratio[0],
                row.ratio[1],
                row.ratio[2]
            );
        }
        let spread = rows.iter().flat_map(|row| row.ratio).fold(f64::MIN, f64::max);
        let _ = writeln!(
            out,
            "\nLargest detail-cost ratio: {spread:.1}x (paper reports up to 14.4x \
             in wall-clock terms).\n"
        );

        let _ = writeln!(
            out,
            "## Table III analog: incremental cost of detail ({} backend)\n",
            backend_name(backend)
        );
        let get = |name: &str| -> [f64; 3] {
            rows.iter()
                .find(|row| row.buildset == name)
                .map(|row| row.units_per_inst)
                .unwrap_or_default()
        };
        let sub = |a: [f64; 3], b: [f64; 3]| [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
        let base = get(BASELINE_BUILDSET);
        let spec_pairs = [
            ("block-decode", "block-decode-spec"),
            ("block-all", "block-all-spec"),
            ("one-decode", "one-decode-spec"),
            ("one-all", "one-all-spec"),
            ("step-all", "step-all-spec"),
        ];
        let mut spec = [0.0f64; 3];
        for (a, b) in spec_pairs {
            let d = sub(get(b), get(a));
            for k in 0..3 {
                spec[k] += d[k] / spec_pairs.len() as f64;
            }
        }
        let decomp = [
            ("base cost (block/min)", base),
            ("+ per-instruction calls", sub(get("one-min"), base)),
            ("+ decode information", sub(get("one-decode"), get("one-min"))),
            ("+ full information", sub(get("one-all"), get("one-min"))),
            ("+ multiple calls", sub(get("step-all"), get("one-all"))),
            ("+ speculation", spec),
        ];
        let _ = writeln!(out, "| component | alpha | arm | ppc |");
        let _ = writeln!(out, "|---|---|---|---|");
        for (label, ns) in decomp {
            let _ = writeln!(out, "| {label} | {:.2} | {:.2} | {:.2} |", ns[0], ns[1], ns[2]);
        }
        out.push('\n');
    }

    if !r.timings.is_empty() {
        let _ = writeln!(out, "## Timing-preset ablation\n");
        let _ = writeln!(
            out,
            "Each cell re-times its kernel under an out-of-order model whose branch \
             predictor, cache replacement policy, and prefetcher are selected by the \
             preset; the functional specification — and every unit table above — is \
             preset-independent. Geomean IPC over kernels, `{}` buildset, `{}` \
             backend.\n",
            BASELINE_BUILDSET,
            backend_name(r.backends[0])
        );
        let _ = writeln!(
            out,
            "| preset | predictor | replacement | prefetcher | alpha IPC | arm IPC | ppc IPC |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|");
        for t in &r.timings {
            let mut line = format!(
                "| {} | {} | {} | {} |",
                t.name,
                t.predictor.name(),
                t.replacement.name(),
                t.prefetcher.name()
            );
            for isa in ISAS {
                let ipcs: Vec<f64> = r
                    .cells
                    .iter()
                    .filter(|c| {
                        c.timing.name == t.name
                            && c.isa == isa
                            && c.buildset == BASELINE_BUILDSET
                            && c.backend == r.backends[0]
                    })
                    .filter_map(|c| c.timing_report.as_ref().map(|tr| tr.ipc()))
                    .collect();
                line.push_str(&format!(" {:.3} |", geomean(&ipcs)));
            }
            let _ = writeln!(out, "{line}");
        }
        out.push('\n');
    }

    if r.measure_time && r.backends.len() > 1 {
        let _ = writeln!(out, "## Backend ablation: wall-clock speed\n");
        let _ = writeln!(
            out,
            "Geometric-mean MIPS over ISAs and kernels per backend (host-dependent, \
             unlike the unit tables above); speedup is relative to `cached`.\n"
        );
        let mips_of = |bs_name: &str, backend: Backend| -> f64 {
            let v: Vec<f64> = r
                .cells
                .iter()
                .filter(|c| c.buildset == bs_name && c.backend == backend && c.secs > 0.0)
                .map(|c| c.stats.insts as f64 / c.secs / 1e6)
                .collect();
            geomean(&v)
        };
        let mut header = String::from("| interface |");
        let mut rule = String::from("|---|");
        for &b in &r.backends {
            header.push_str(&format!(" {} MIPS |", backend_name(b)));
            rule.push_str("---|");
        }
        let cached = r.backends.contains(&Backend::Cached);
        for &b in &r.backends {
            if cached && b != Backend::Cached {
                header.push_str(&format!(" {}/cached |", backend_name(b)));
                rule.push_str("---|");
            }
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        let mut sets: Vec<&BuildsetDef> = STANDARD_BUILDSETS.iter().collect();
        sets.sort_by_key(|bs| semantic_rank(bs));
        for bs in sets {
            let mut line = format!("| {} |", bs.name);
            let base = mips_of(bs.name, Backend::Cached);
            for &b in &r.backends {
                line.push_str(&format!(" {:.2} |", mips_of(bs.name, b)));
            }
            for &b in &r.backends {
                if cached && b != Backend::Cached {
                    let m = mips_of(bs.name, b);
                    if base > 0.0 {
                        line.push_str(&format!(" {:.2}x |", m / base));
                    } else {
                        line.push_str(" - |");
                    }
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out.push('\n');
        // The geomean above folds every ISA together, but the translation
        // win is ISA-dependent (ARM's shared semantic cost — predicate
        // check, barrel shifter, flag updates — is paid identically by both
        // backends and caps its ratio). Break out the flagship translated
        // interfaces per ISA, matching the paper's per-ISA tables.
        if cached && r.backends.contains(&Backend::Compiled) {
            let _ = writeln!(
                out,
                "Per-ISA breakdown of the translated interfaces (geomean over \
                 kernels):\n"
            );
            let _ = writeln!(out, "| ISA | interface | cached MIPS | compiled MIPS | speedup |");
            let _ = writeln!(out, "|---|---|---|---|---|");
            let mut isas: Vec<&'static str> = Vec::new();
            for c in &r.cells {
                if !isas.contains(&c.isa) {
                    isas.push(c.isa);
                }
            }
            let isa_mips = |isa: &str, bs_name: &str, backend: Backend| -> f64 {
                let v: Vec<f64> = r
                    .cells
                    .iter()
                    .filter(|c| {
                        c.isa == isa
                            && c.buildset == bs_name
                            && c.backend == backend
                            && c.secs > 0.0
                    })
                    .map(|c| c.stats.insts as f64 / c.secs / 1e6)
                    .collect();
                geomean(&v)
            };
            for isa in isas {
                for bs_name in ["block-min", "block-decode"] {
                    let base = isa_mips(isa, bs_name, Backend::Cached);
                    let m = isa_mips(isa, bs_name, Backend::Compiled);
                    let speed = if base > 0.0 { format!("{:.2}x", m / base) } else { "-".into() };
                    let _ = writeln!(out, "| {isa} | {bs_name} | {base:.2} | {m:.2} | {speed} |");
                }
            }
            out.push('\n');
        }
    }
    if r.measure_time {
        let _ =
            writeln!(out, "Sweep wall-clock: {:.1}s with {} worker(s).", r.elapsed_secs, r.jobs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(jobs: usize) -> SweepConfig {
        SweepConfig { jobs, kernels: vec!["gcd".into()], ..Default::default() }
    }

    #[test]
    fn job_resolution_clamps() {
        assert_eq!(resolve_jobs(3, 100), 3);
        assert_eq!(resolve_jobs(64, 4), 4, "jobs beyond the cell count clamp down");
        assert_eq!(resolve_jobs(7, 0), 1, "an empty matrix still gets one worker");
        let auto = resolve_jobs(0, 1000);
        assert!((1..=1000).contains(&auto), "auto is within [1, cells]");
    }

    #[test]
    fn unknown_kernel_is_a_usage_error() {
        let err = resolve_kernels(&["nope".into()]).expect_err("must reject");
        assert!(err.contains("unknown kernel 'nope'"), "{err}");
        assert!(err.contains("sieve"), "error names the valid kernels: {err}");
        assert!(!resolve_kernels(&[]).unwrap().is_empty(), "empty means full suite");
    }

    #[test]
    fn matrix_covers_every_standard_buildset_and_isa() {
        let cells = sweep_cells(&["gcd"], &[Backend::Cached], &[TimingConfig::CLASSIC]);
        assert_eq!(cells.len(), 12 * 3);
        for isa in ISAS {
            for bs in &STANDARD_BUILDSETS {
                assert!(
                    cells.iter().any(|c| c.isa == isa && c.buildset.name == bs.name),
                    "missing cell {isa}/{}",
                    bs.name
                );
            }
        }
    }

    #[test]
    fn sweep_json_is_bit_identical_across_job_counts() {
        // The acceptance criterion: the JSON is a pure function of the
        // configuration, not of scheduling.
        let a = to_json(&run_sweep(&tiny(1)).expect("sweeps"));
        let b = to_json(&run_sweep(&tiny(4)).expect("sweeps"));
        assert_eq!(a, b, "jobs=1 and jobs=4 must produce identical bytes");
    }

    #[test]
    fn unknown_timing_preset_is_a_usage_error() {
        let err = resolve_timings(&["nope".into()]).expect_err("must reject");
        assert!(err.contains("unknown timing preset 'nope'"), "{err}");
        assert!(err.contains("classic"), "error names the valid presets: {err}");
        assert_eq!(resolve_timings(&[]).unwrap(), vec![TimingConfig::CLASSIC]);
    }

    #[test]
    fn multi_preset_sweep_is_bit_identical_across_job_counts() {
        // The tentpole acceptance criterion: a timing axis crossing all
        // three component dimensions, and the JSON still a pure function of
        // the configuration.
        let multi = |jobs| SweepConfig {
            timings: resolve_timings(&["classic".into(), "aggressive".into()]).unwrap(),
            ..tiny(jobs)
        };
        let a = run_sweep(&multi(1)).expect("sweeps");
        let b = run_sweep(&multi(4)).expect("sweeps");
        assert_eq!(to_json(&a), to_json(&b), "jobs=1 and jobs=4 must produce identical bytes");

        assert_eq!(a.cells.len(), 2 * 12 * 3, "preset axis doubles the matrix");
        let json = to_json(&a);
        assert!(json.contains("\"timings\":[\"classic\",\"aggressive\"]"));
        assert!(json.contains("\"preset\":\"aggressive\""));
        // The presets genuinely differ: same kernel, same functional
        // counters, different cycle counts somewhere in the matrix.
        let classic: Vec<&CellResult> =
            a.cells.iter().filter(|c| c.timing.name == "classic").collect();
        let aggressive: Vec<&CellResult> =
            a.cells.iter().filter(|c| c.timing.name == "aggressive").collect();
        assert_eq!(classic.len(), aggressive.len());
        let mut cycles_differ = false;
        for (x, y) in classic.iter().zip(aggressive.iter()) {
            assert_eq!(x.stats, y.stats, "functional counters are preset-independent");
            if let (Some(tx), Some(ty)) = (&x.timing_report, &y.timing_report) {
                assert_eq!(tx.insts, ty.insts, "retired instructions are preset-independent");
                if tx.cycles != ty.cycles {
                    cycles_differ = true;
                }
            }
        }
        assert!(cycles_differ, "presets must change the timing somewhere");
        let md = render_markdown(&a);
        assert!(md.contains("Timing-preset ablation"));
        assert!(md.contains("| aggressive | gshare | lru | next-line |"));
    }

    #[test]
    fn panicked_cell_is_retried_and_the_sweep_stays_byte_identical() {
        // One deliberately crashed cell: the pool survives, the cell is
        // retried one backend rung lower and completes, the crash is
        // reported, and the JSON is still a pure function of the
        // configuration — identical bytes for jobs=1 and jobs=4.
        let panicky = |jobs| SweepConfig {
            panic_cell: Some("alpha/block-min/gcd/cached".into()),
            ..tiny(jobs)
        };
        let a = run_sweep(&panicky(1)).expect("sweeps");
        let b = run_sweep(&panicky(4)).expect("sweeps");
        assert_eq!(to_json(&a), to_json(&b), "crash path must stay deterministic");

        let cell = a
            .cells
            .iter()
            .find(|c| c.isa == "alpha" && c.buildset == "block-min" && c.backend == Backend::Cached)
            .expect("cell present");
        assert_eq!(cell.crashes, 1, "first attempt panicked");
        assert!(cell.crash.as_deref().unwrap().contains("deliberate panic"), "{:?}", cell.crash);
        assert!(cell.halted, "the retry (demoted to interpreted) completes the cell");
        assert_eq!(cell.exit_code, 0);
        assert!(to_json(&a).contains("\"crashes\":1"));
        for c in &a.cells {
            if c.crashes == 0 {
                assert!(c.crash.is_none());
            }
        }
        // Every other cell is untouched by the neighbor's crash.
        let clean = run_sweep(&tiny(1)).expect("sweeps");
        for (x, y) in a.cells.iter().zip(clean.cells.iter()) {
            if x.crashes == 0 {
                assert_eq!(x.stats, y.stats, "{}/{}/{}", x.isa, x.buildset, x.kernel);
            }
        }
    }

    #[test]
    fn exhausted_retry_budget_reports_a_crashed_cell_without_sinking_the_pool() {
        // retries = 0 and a deliberate panic: the cell is reported crashed,
        // everything else completes normally.
        let cfg = SweepConfig {
            panic_cell: Some("ppc/step-all/gcd/cached".into()),
            retries: 0,
            ..tiny(2)
        };
        let report = run_sweep(&cfg).expect("the pool must survive");
        let crashed = report
            .cells
            .iter()
            .find(|c| c.isa == "ppc" && c.buildset == "step-all")
            .expect("cell present");
        assert_eq!(crashed.crashes, 1);
        assert!(!crashed.halted);
        assert_eq!(crashed.stats.insts, 0, "no partial stats from a crashed cell");
        let survivors = report.cells.iter().filter(|c| c.halted).count();
        assert_eq!(survivors, report.cells.len() - 1, "exactly one casualty");
    }

    #[test]
    fn ratios_are_normalized_to_block_min() {
        let report = run_sweep(&tiny(0)).expect("sweeps");
        assert_eq!(report.cells.len(), 12 * 3);
        for c in &report.cells {
            assert!(c.halted, "{}/{}/{}: kernel halts", c.isa, c.buildset, c.kernel);
            assert_eq!(c.exit_code, 0, "{}/{}: clean exit", c.isa, c.buildset);
            if c.buildset == BASELINE_BUILDSET {
                assert!((c.ratio - 1.0).abs() < 1e-12, "baseline is exactly 1.0");
            } else {
                assert!(c.ratio >= 1.0, "{}/{}: below baseline", c.isa, c.buildset);
            }
        }
        // The paper's shape: maximum-detail step interfaces cost several
        // times the block-min baseline.
        for row in &report.table {
            if row.buildset == "step-all-spec" {
                for (k, isa) in ISAS.iter().enumerate() {
                    assert!(row.ratio[k] > 3.0, "{isa}: step-all-spec only {}", row.ratio[k]);
                }
            }
        }
        let json = to_json(&report);
        assert!(json.contains("\"schema\":\"lis-sweep-v1\""));
        assert!(!json.contains("\"secs\""), "no wall-clock in deterministic output");
        let md = render_markdown(&report);
        assert!(md.contains("Table II analog"));
        assert!(md.contains("block-min"));
    }
}
