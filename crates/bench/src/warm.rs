//! Cold-vs-warm artifact-store benchmark (`lis serve --bench-warm`).
//!
//! Measures what the service's shared translation cache buys a second
//! session: every cell runs a kernel twice on fresh simulators — cold
//! (translating everything, publishing its artifacts) and warm (seeding
//! predecoded blocks and compiled superblocks from the store) — and proves
//! the two runs byte-equal before reporting. The JSON scoreboard
//! (`BENCH_serve.json`) is deterministic by construction; wall-clock
//! numbers appear only under `measure_time`, same policy as the sweep.

use lis_core::JsonObj;
use lis_harness::backend_name;
use lis_runtime::{ArtifactKey, ArtifactStore, Backend, Simulator, StoreStats};
use lis_workloads::{spec_of, ISAS};
use std::sync::Arc;
use std::time::Instant;

/// What to measure.
#[derive(Debug, Clone)]
pub struct WarmConfig {
    /// Kernel names (each must exist on every ISA).
    pub kernels: Vec<String>,
    /// Buildset names.
    pub buildsets: Vec<String>,
    /// Backends with reusable translation state.
    pub backends: Vec<Backend>,
    /// Instruction budget per run.
    pub max_insts: u64,
    /// Include wall-clock seconds (host noise; breaks determinism).
    pub measure_time: bool,
}

impl Default for WarmConfig {
    fn default() -> WarmConfig {
        WarmConfig {
            kernels: vec!["gcd".to_string(), "strrev".to_string()],
            buildsets: vec!["block-all".to_string(), "block-min".to_string()],
            backends: vec![Backend::Cached, Backend::Compiled],
            max_insts: 100_000_000,
            measure_time: false,
        }
    }
}

/// One (ISA, buildset, kernel, backend) cell, run cold then warm.
#[derive(Debug, Clone)]
pub struct WarmCell {
    /// ISA name.
    pub isa: &'static str,
    /// Buildset name.
    pub buildset: &'static str,
    /// Kernel name.
    pub kernel: String,
    /// Backend.
    pub backend: Backend,
    /// Instructions retired (identical cold and warm, asserted).
    pub insts: u64,
    /// Blocks the cold run translated.
    pub cold_blocks_built: u64,
    /// Blocks the warm run translated (0 when sharing works).
    pub warm_blocks_built: u64,
    /// Cache entries the warm run adopted from the store.
    pub seeded: u64,
    /// Whether cold and warm agreed on stdout, exit code, instruction
    /// count, and detail units.
    pub equal: bool,
    /// Cold wall-clock seconds (only under `measure_time`).
    pub cold_secs: f64,
    /// Warm wall-clock seconds (only under `measure_time`).
    pub warm_secs: f64,
}

/// The whole scoreboard.
#[derive(Debug, Clone)]
pub struct WarmReport {
    /// Every cell, in deterministic (ISA, buildset, kernel, backend) order.
    pub cells: Vec<WarmCell>,
    /// Store counters after the run (hits == cells when sharing works).
    pub store: StoreStats,
    /// The budget each run got.
    pub max_insts: u64,
    /// Whether wall-clock fields are included in the JSON.
    pub measure_time: bool,
}

impl WarmReport {
    /// Whether every cell matched cold-vs-warm and adopted the cache.
    pub fn ok(&self) -> bool {
        self.cells.iter().all(|c| c.equal && c.warm_blocks_built == 0 && c.seeded > 0)
    }
}

/// Runs the cold-vs-warm matrix against one fresh [`ArtifactStore`].
///
/// # Errors
///
/// A usage-level message (unknown kernel/buildset, assembly failure) or a
/// broken invariant (a cold run refusing to export, a store miss right
/// after publishing, cold/warm divergence).
pub fn run_warm(cfg: &WarmConfig) -> Result<WarmReport, String> {
    let store = ArtifactStore::new();
    let mut cells = Vec::new();
    for isa in ISAS {
        for bs_name in &cfg.buildsets {
            let bs = *lis_core::find_buildset(bs_name)
                .ok_or_else(|| format!("unknown buildset `{bs_name}`"))?;
            for kname in &cfg.kernels {
                let w = lis_workloads::kernel(isa, kname)
                    .ok_or_else(|| format!("unknown kernel `{kname}` on {isa}"))?;
                let image = w.assemble().map_err(|e| e.to_string())?;
                for &backend in &cfg.backends {
                    let label = format!("{isa}/{bs_name}/{kname}/{}", backend_name(backend));

                    let t0 = Instant::now();
                    let mut cold = Simulator::new(spec_of(isa), bs).map_err(|e| e.to_string())?;
                    cold.set_backend(backend);
                    cold.load_program(&image).map_err(|e| e.to_string())?;
                    let cs = cold
                        .run_to_halt(cfg.max_insts)
                        .map_err(|e| format!("{label}: cold: {e}"))?;
                    let cold_secs = t0.elapsed().as_secs_f64();
                    let key = ArtifactKey::new(isa, &image, bs.name, backend);
                    let art = cold
                        .export_artifacts()
                        .ok_or_else(|| format!("{label}: cold run refused to export"))?;
                    store.insert(key, Arc::new(art));

                    let t1 = Instant::now();
                    let mut warm = Simulator::new(spec_of(isa), bs).map_err(|e| e.to_string())?;
                    warm.set_backend(backend);
                    warm.load_program(&image).map_err(|e| e.to_string())?;
                    let shared = store
                        .get(&ArtifactKey::new(isa, &image, bs.name, backend))
                        .ok_or_else(|| format!("{label}: store miss after publish"))?;
                    let seeded =
                        warm.seed_artifacts(&shared).map_err(|e| format!("{label}: {e}"))?;
                    let ws = warm
                        .run_to_halt(cfg.max_insts)
                        .map_err(|e| format!("{label}: warm: {e}"))?;
                    let warm_secs = t1.elapsed().as_secs_f64();

                    let equal = cs.exit_code == ws.exit_code
                        && cs.insts == ws.insts
                        && cold.stdout() == warm.stdout()
                        && cold.stats.detail_units() == warm.stats.detail_units();
                    if !equal {
                        return Err(format!("{label}: cold and warm runs diverged"));
                    }
                    cells.push(WarmCell {
                        isa,
                        buildset: bs.name,
                        kernel: kname.clone(),
                        backend,
                        insts: cs.insts,
                        cold_blocks_built: cold.stats.blocks_built,
                        warm_blocks_built: warm.stats.blocks_built,
                        seeded: seeded as u64,
                        equal,
                        cold_secs,
                        warm_secs,
                    });
                }
            }
        }
    }
    Ok(WarmReport {
        cells,
        store: store.stats(),
        max_insts: cfg.max_insts,
        measure_time: cfg.measure_time,
    })
}

/// Renders the scoreboard (`BENCH_serve.json`). Deterministic unless
/// `measure_time` was set.
pub fn to_json(r: &WarmReport) -> String {
    let mut o = JsonObj::new();
    o.str("schema", "lis-serve-warm-v1");
    o.u64("max_insts", r.max_insts);
    o.bool("ok", r.ok());
    let mut st = JsonObj::new();
    st.u64("hits", r.store.hits)
        .u64("misses", r.store.misses)
        .u64("inserts", r.store.inserts)
        .u64("entries", r.store.entries);
    o.raw("store", &st.finish());
    let mut cells = String::from("[");
    for (i, c) in r.cells.iter().enumerate() {
        if i > 0 {
            cells.push(',');
        }
        let mut co = JsonObj::new();
        co.str("isa", c.isa)
            .str("buildset", c.buildset)
            .str("kernel", &c.kernel)
            .str("backend", backend_name(c.backend))
            .u64("insts", c.insts)
            .u64("cold_blocks_built", c.cold_blocks_built)
            .u64("warm_blocks_built", c.warm_blocks_built)
            .u64("seeded", c.seeded)
            .bool("equal", c.equal);
        if r.measure_time {
            co.f64("cold_secs", c.cold_secs);
            co.f64("warm_secs", c.warm_secs);
            co.f64("speedup", c.cold_secs / c.warm_secs.max(1e-9));
        }
        cells.push_str(&co.finish());
    }
    cells.push(']');
    o.raw("cells", &cells);
    o.finish()
}

/// Human-oriented summary for the terminal.
pub fn render(r: &WarmReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cold-vs-warm: {} cells, store {} hits / {} misses / {} entries",
        r.cells.len(),
        r.store.hits,
        r.store.misses,
        r.store.entries
    );
    for c in &r.cells {
        let mut line = format!(
            "  {:<34} cold built {:>4} blocks, warm seeded {:>4}, built {}",
            format!("{}/{}/{}/{}", c.isa, c.buildset, c.kernel, backend_name(c.backend)),
            c.cold_blocks_built,
            c.seeded,
            c.warm_blocks_built
        );
        if r.measure_time {
            let _ = write!(line, "  ({:.1}x)", c.cold_secs / c.warm_secs.max(1e-9));
        }
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "all cells cold==warm: {}", if r.ok() { "yes" } else { "NO" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_runs_adopt_everything_and_match_cold() {
        let cfg = WarmConfig {
            kernels: vec!["gcd".to_string()],
            buildsets: vec!["block-all".to_string()],
            ..WarmConfig::default()
        };
        let report = run_warm(&cfg).expect("matrix runs");
        assert_eq!(report.cells.len(), 3 * 2, "3 ISAs x 2 backends");
        assert!(report.ok(), "{report:?}");
        for c in &report.cells {
            assert!(c.cold_blocks_built > 0, "{c:?}");
            assert_eq!(c.warm_blocks_built, 0, "{c:?}");
            assert!(c.seeded > 0, "{c:?}");
        }
        assert_eq!(report.store.hits as usize, report.cells.len());
        let json = to_json(&report);
        assert!(json.contains(r#""schema":"lis-serve-warm-v1""#));
        assert!(json.contains(r#""ok":true"#));
        assert!(!json.contains("cold_secs"), "no wall-clock without measure_time");
        // Deterministic: the same matrix renders byte-identically.
        let again = to_json(&run_warm(&cfg).expect("matrix reruns"));
        assert_eq!(json, again);
    }
}
