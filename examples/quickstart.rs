//! Quickstart: assemble a small Alpha program, synthesize a simulator with
//! the debugging-friendly `one-all` interface, and watch it run.
//!
//! ```text
//! cargo run -p lis-bench --example quickstart
//! ```

use lis_core::{DynInst, F_ALU_OUT, F_EFF_ADDR, ONE_ALL};
use lis_runtime::Simulator;

fn main() {
    // 1. A program, in Alpha assembly: sum the numbers 1..=10, store the
    //    result, print it, exit.
    let src = "
_start: mov 0, t0            ; acc
        mov 10, t1           ; i
loop:   addq t0, t1, t0
        subq t1, 1, t1
        bne t1, loop
        ldah t2, ha16(result)(zero)
        lda t2, slo16(result)(t2)
        stq t0, 0(t2)
        mov 4, v0            ; PUTUDEC syscall
        mov t0, a0
        callsys
        mov 1, v0            ; EXIT syscall
        mov 0, a0
        callsys
        .data
result: .space 8
";
    let image = lis_isa_alpha::assemble(src).expect("assembles");
    println!("assembled {} bytes, entry {:#x}", image.size(), image.entry);

    // 2. Synthesize a functional simulator from the single Alpha
    //    specification with the one-call-per-instruction, everything-visible
    //    interface the paper recommends for debugging.
    let mut sim = Simulator::new(lis_isa_alpha::spec(), ONE_ALL).expect("valid interface");
    sim.load_program(&image).expect("loads");

    // 3. Single-step the first few instructions, printing the published
    //    dynamic-instruction records (disassembly + interesting fields).
    let disasm = lis_isa_alpha::spec().disasm;
    let mut di = DynInst::new();
    println!("\nfirst eight dynamic instructions:");
    for _ in 0..8 {
        sim.next_inst(&mut di).expect("interface call");
        let text = disasm(di.header.instr_bits, di.header.pc);
        print!("  {:#06x}: {text:<28}", di.header.pc);
        if let Some(v) = di.field(F_ALU_OUT) {
            print!(" alu_out={v}");
        }
        if let Some(ea) = di.field(F_EFF_ADDR) {
            print!(" ea={ea:#x}");
        }
        println!();
    }

    // 4. Run to completion and show what the program printed.
    let summary = sim.run_to_halt(1_000_000).expect("runs");
    println!("\nprogram output: {}", String::from_utf8_lossy(sim.stdout()).trim());
    println!("exit code {}, {} instructions, {}", summary.exit_code, sim.stats.insts, sim.stats);
    let stored = sim.state.mem.read_u64(image.symbol("result").unwrap(), lis_mem::Endian::Little);
    println!("memory at `result`: {:?}", stored);
}
