//! Interface explorer: run the same kernel through all twelve standard
//! interfaces and see what each one costs and what it publishes — a
//! miniature of the paper's Table II.
//!
//! ```text
//! cargo run -p lis-bench --release --example interface_explorer [isa] [kernel]
//! ```

use lis_core::STANDARD_BUILDSETS;
use lis_runtime::Simulator;
use lis_workloads::{spec_of, suite_of};
use std::time::Instant;

fn main() {
    let isa = std::env::args().nth(1).unwrap_or_else(|| "alpha".into());
    let kernel = std::env::args().nth(2).unwrap_or_else(|| "sieve".into());
    let Some(w) = suite_of(&isa).iter().find(|w| w.name == kernel) else {
        eprintln!("unknown kernel `{kernel}` (try sieve, fib, matmul, hash31, strrev, sort)");
        std::process::exit(2);
    };
    let image = w.assemble().expect("kernel assembles");
    println!("kernel `{kernel}` on {isa}: expected output {:?}", w.expected_stdout().trim());
    println!(
        "\n{:<20} {:>8} {:>12} {:>12} {:>10}",
        "interface", "MIPS", "insts", "iface calls", "calls/inst"
    );
    for bs in STANDARD_BUILDSETS {
        let mut sim = Simulator::new(spec_of(&isa), bs).expect("valid interface");
        sim.load_program(&image).expect("loads");
        // Warm predecode, then measure a fresh run with hot caches.
        sim.run_to_halt(u64::MAX).expect("runs");
        sim.reset_program(&image).expect("reloads");
        let t = Instant::now();
        let summary = sim.run_to_halt(u64::MAX).expect("runs");
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(String::from_utf8_lossy(sim.stdout()), w.expected_stdout());
        println!(
            "{:<20} {:>8.2} {:>12} {:>12} {:>10.2}",
            bs.name,
            summary.insts as f64 / dt / 1e6,
            summary.insts,
            sim.stats.calls / 2, // two runs happened; calls accumulate
            sim.stats.calls_per_inst(),
        );
    }
    println!("\nall twelve interfaces produced identical program output.");
}
