//! The paper's headline development-time claim, demonstrated: deriving a
//! brand-new interface from the single specification takes a dozen lines —
//! and the interface lint catches invalid derivations before anything runs.
//!
//! ```text
//! cargo run -p lis-bench --release --example custom_buildset
//! ```

use lis_core::{
    buildset, check_interface, render_report, BuildsetDef, FieldSet, Semantic, Visibility,
    F_EFF_ADDR, F_OPCODE,
};
use lis_runtime::Simulator;
use lis_workloads::{spec_of, suite_of};

// ---------------------------------------------------------------------
// This is the entire cost of a new interface (the paper: "about a dozen
// lines ... created in mere minutes"): a memory-trace interface that runs a
// basic block per call and publishes only effective addresses and opcodes —
// exactly what a cache simulator needs, and nothing else.
buildset! {
    /// Block calls; effective addresses and opcodes only.
    pub const MEM_TRACE: BuildsetDef = {
        name: "mem-trace",
        semantic: Block,
        visibility: Visibility::MIN.plus(FieldSet::of(&[F_EFF_ADDR, F_OPCODE])),
        speculation: false,
    };
}
// ---------------------------------------------------------------------

fn main() {
    let isa = spec_of("alpha");
    let w = suite_of("alpha").iter().find(|w| w.name == "sort").unwrap();
    let image = w.assemble().unwrap();

    // The derived interface drives a toy cache simulator.
    let mut sim = Simulator::new(isa, MEM_TRACE).expect("lint accepts this interface");
    sim.load_program(&image).unwrap();
    let mut cache = lis_timing::Cache::new(lis_timing::CacheConfig::L1D);
    let mut trace = Vec::new();
    let mut accesses = 0u64;
    while !sim.state.halted {
        sim.next_block(&mut trace).unwrap();
        for di in &trace {
            if let Some(ea) = di.field(F_EFF_ADDR) {
                cache.access(ea);
                accesses += 1;
            }
        }
    }
    println!("interface `{}` ({}):", MEM_TRACE.name, MEM_TRACE.describe());
    println!(
        "  {} instructions, {} memory accesses, D-cache miss rate {:.2}%",
        sim.stats.insts,
        accesses,
        cache.miss_rate() * 100.0
    );
    println!("  program output: {:?}", String::from_utf8_lossy(sim.stdout()).trim());

    // And the guard rail: hiding a value that must cross a call boundary is
    // the paper's "typical interface specification error" — the lint rejects
    // it statically instead of letting simulation go wrong at run time.
    let broken = BuildsetDef {
        name: "step-mem-trace",
        semantic: Semantic::Step,
        visibility: Visibility::MIN.plus(FieldSet::of(&[F_EFF_ADDR])),
        speculation: false,
    };
    match check_interface(isa, &broken) {
        Ok(()) => unreachable!("the lint must reject this"),
        Err(diags) => {
            println!("\nan invalid derivation is rejected before anything runs:");
            print!("{}", render_report(&broken, &diags[..3.min(diags.len())]));
            println!("  ... ({} violations total)", diags.len());
        }
    }
}
