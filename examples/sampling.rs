//! Sampled simulation (the paper's motivating use case for multiple
//! interfaces, after SMARTS): detailed timing simulation for short windows,
//! fast-forwarding through everything in between.
//!
//! Two simulators share architectural state: a fast `block-min` functional
//! simulator fast-forwards, and a detailed `step-all`-driven pipeline model
//! measures IPC inside sample windows. The fast-forward interface is exactly
//! the "low semantic detail, little information" interface the paper says
//! sampling needs — and using it instead of the detailed one is what makes
//! sampling pay off.
//!
//! ```text
//! cargo run -p lis-bench --release --example sampling
//! ```

use lis_core::{DynInst, Step, BLOCK_MIN, STEP_ALL};
use lis_runtime::Simulator;
use lis_timing::{CoreConfig, CoreModel};
use lis_workloads::{spec_of, suite_of};
use std::time::Instant;

const WINDOW: u64 = 2_000; // detailed instructions per sample
const PERIOD: u64 = 20_000; // instructions between window starts

fn main() {
    let isa = "alpha";
    let w = suite_of(isa).iter().find(|w| w.name == "sort").unwrap();
    let image = w.assemble().unwrap();

    // The fast-forward functional simulator and the detailed one.
    let mut fast = Simulator::new(spec_of(isa), BLOCK_MIN).unwrap();
    let mut detailed = Simulator::new(spec_of(isa), STEP_ALL).unwrap();
    fast.load_program(&image).unwrap();
    detailed.load_program(&image).unwrap();

    let mut model = CoreModel::new(&CoreConfig::default());
    let mut di = DynInst::new();
    let mut sampled_insts = 0u64;
    let mut sampled_cycles = 0u64;
    let mut windows = 0u32;
    let start = Instant::now();

    'outer: loop {
        // Fast-forward with the paper's execute-N-instructions call: no
        // records are published at all.
        fast.fast_forward(PERIOD - WINDOW).unwrap();
        if fast.state.halted {
            break 'outer;
        }
        // Transplant state into the detailed simulator and measure a window.
        detailed.state = fast.state.clone();
        detailed.os = fast.os.clone();
        let cycles_before = model.cycles;
        let window_start = detailed.stats.insts;
        while detailed.stats.insts - window_start < WINDOW && !detailed.state.halted {
            for step in Step::ALL {
                detailed.step_inst(step, &mut di).unwrap();
            }
            model.retire(spec_of(isa), &di);
        }
        sampled_insts += detailed.stats.insts - window_start;
        sampled_cycles += model.cycles - cycles_before;
        windows += 1;
        if detailed.state.halted {
            // The program finished inside a detailed window.
            fast.state = detailed.state.clone();
            fast.os = detailed.os.clone();
            break;
        }
        // Hand state back to the fast simulator.
        fast.state = detailed.state.clone();
        fast.os = detailed.os.clone();
    }

    let wall = start.elapsed().as_secs_f64();
    let total = fast.stats.insts + detailed.stats.insts;
    println!("program output: {:?}", String::from_utf8_lossy(fast.stdout()).trim());
    println!(
        "total instructions: {total} ({} fast-forwarded, {sampled_insts} detailed)",
        fast.stats.insts
    );
    println!("detailed windows: {windows}");
    if sampled_cycles > 0 {
        println!("sampled IPC estimate: {:.3}", sampled_insts as f64 / sampled_cycles as f64);
    }
    println!("wall time: {:.1} ms ({:.2} MIPS overall)", wall * 1e3, total as f64 / wall / 1e6);
    println!(
        "\nthe fast-forward interface (block-min) is {}x cheaper per call than the detailed one (step-all):",
        STEP_ALL.semantic.calls_per_inst()
    );
    println!(
        "  fast simulator made {} interface calls for {} instructions ({:.2}/inst)",
        fast.stats.calls,
        fast.stats.insts,
        fast.stats.calls_per_inst()
    );
    println!(
        "  detailed simulator made {} interface calls for {} instructions ({:.2}/inst)",
        detailed.stats.calls,
        detailed.stats.insts,
        detailed.stats.calls_per_inst()
    );
}
