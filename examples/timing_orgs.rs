//! Figure 1, live: run all five decoupled simulator organizations on the
//! same program and compare their reports — including a timing-first run
//! with injected timing-model bugs (caught by the checker) and a
//! speculative functional-first run with a forced memory divergence
//! (repaired by rollback).
//!
//! ```text
//! cargo run -p lis-bench --release --example timing_orgs [isa] [kernel]
//! ```

use lis_timing::{
    run_functional_first, run_integrated, run_speculative_functional_first, run_timing_directed,
    run_timing_first, CoreConfig, MemOverride,
};
use lis_workloads::{spec_of, suite_of};

fn main() {
    let isa = std::env::args().nth(1).unwrap_or_else(|| "ppc".into());
    let kernel = std::env::args().nth(2).unwrap_or_else(|| "sort".into());
    let Some(w) = suite_of(&isa).iter().find(|w| w.name == kernel) else {
        eprintln!("unknown kernel `{kernel}`");
        std::process::exit(2);
    };
    let image = w.assemble().expect("kernel assembles");
    let spec = spec_of(&isa);
    let cfg = CoreConfig::default();

    println!("kernel `{kernel}` on {isa} under every organization:\n");
    let reports = [
        run_integrated(spec, &image, &cfg).expect("runs"),
        run_functional_first(spec, &image, &cfg).expect("runs"),
        run_timing_directed(spec, &image, &cfg).expect("runs"),
        run_timing_first(spec, &image, &cfg, None).expect("runs"),
        run_speculative_functional_first(spec, &image, &cfg, &[]).expect("runs"),
    ];
    for r in &reports {
        println!("  {r}");
    }
    for r in &reports[1..] {
        assert_eq!(r.stdout, reports[0].stdout, "organizations must agree");
    }
    println!(
        "\nall organizations computed: {:?}",
        String::from_utf8_lossy(&reports[0].stdout).trim()
    );

    // Timing-first with an intentionally buggy timing model: the functional
    // checker catches every corruption and reloads architectural state.
    let buggy = run_timing_first(spec, &image, &cfg, Some(199)).expect("runs");
    println!(
        "\ntiming-first with an injected bug every 199 instructions:\n  {} mismatches caught, output still {:?}",
        buggy.mismatches,
        String::from_utf8_lossy(&buggy.stdout).trim()
    );

    // Speculative functional-first with a timing-detected memory divergence:
    // the functional simulator is rolled back, memory corrected, and
    // execution re-run down the corrected path.
    let overrides = [MemOverride { after_insts: 500, addr: 0x2_0000, size: 4, val: 1 }];
    let diverged = run_speculative_functional_first(spec, &image, &cfg, &overrides).expect("runs");
    println!(
        "\nspeculative functional-first with one forced memory divergence:\n  {} rollback(s); output {:?}",
        diverged.rollbacks,
        String::from_utf8_lossy(&diverged.stdout).trim()
    );
}
