//! The case runner, its configuration, and the deterministic RNG.

/// Outcome of one generated case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs do not satisfy a [`crate::prop_assume!`]
    /// precondition; the runner retries with fresh inputs.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xoshiro256** generator used for all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name),
    /// via FNV-1a into SplitMix64 expansion.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Drives one property over many generated cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with `config`.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `case` until `config.cases` successes are accumulated.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, or when rejection exhausts the
    /// retry budget (`cases * 16` attempts).
    pub fn run_named(
        &mut self,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::from_name(name);
        let mut successes = 0u32;
        let mut attempts = 0u64;
        let budget = (self.config.cases as u64).saturating_mul(16).max(64);
        while successes < self.config.cases {
            attempts += 1;
            assert!(
                attempts <= budget,
                "{name}: too many rejected cases ({} successes after {attempts} attempts)",
                successes
            );
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed at case {successes}: {msg}")
                }
            }
        }
    }
}

/// Declares property tests: each function's arguments are drawn from the
/// strategies after `in`, and the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_named(stringify!($name), |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
