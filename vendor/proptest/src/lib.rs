//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `proptest` its property tests actually use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_recursive`,
//! [`prop_oneof!`], `Just`, integer ranges and tuples as strategies,
//! `collection::vec`, `sample::select`, `any::<T>()`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message (`Debug` is required of values only at the call
//!   sites, which format their own messages).
//! * **Fixed deterministic seeding** per test body, derived from the test
//!   name, so failures reproduce across runs.
//! * Rejection via [`prop_assume!`] retries with fresh inputs, capped at
//!   `cases * 16` attempts.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing a `Vec` whose length is drawn from `len` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use crate::strategy::Select;

    /// A strategy choosing one element of `options` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select { options }
    }
}

/// The `Arbitrary`-backed `any` free function.
pub mod arbitrary {
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// Types with a canonical value strategy.
    pub trait Arbitrary: Sized {
        /// Generates one value from raw randomness.
        fn arbitrary(src: &mut dyn FnMut() -> u64) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_lossless)]
                fn arbitrary(src: &mut dyn FnMut() -> u64) -> Self {
                    src() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(src: &mut dyn FnMut() -> u64) -> Self {
            src() & 1 == 1
        }
    }

    /// The canonical strategy for `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
