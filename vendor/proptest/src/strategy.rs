//! Value-generation strategies.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// A recursive strategy: `self` is the leaf case and `recurse` builds
    /// one additional level from the strategy for the level below. `depth`
    /// bounds the nesting; the size-tuning parameters of upstream proptest
    /// are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = recurse(level).boxed();
        }
        level
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy generating exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`crate::arbitrary::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut src = || rng.next_u64();
        T::arbitrary(&mut src)
    }
}

/// See [`crate::sample::select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Uniform choice among same-valued strategies (the [`crate::prop_oneof!`]
/// desugaring).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.arms[rng.below(self.arms.len() as u64) as usize].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_lossless, trivial_numeric_casts)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_lossless, trivial_numeric_casts)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = self.clone().into_inner();
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among strategies of a common value type.
///
/// Upstream supports weighted arms; the tests in this workspace only use the
/// unweighted form.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
