//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `criterion` its benches use: `Criterion::default()
//! .sample_size(..)`, benchmark groups with `throughput`/`bench_function`/
//! `bench_with_input`/`finish`, `Bencher::iter`, [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Differences from upstream, deliberately accepted: no warm-up phase, no
//! statistical analysis, no plots, no baseline persistence. Each benchmark
//! runs `sample_size` timed samples and reports min/median/max wall-clock
//! time per iteration to stdout. The numbers are indicative, not rigorous —
//! good enough to regenerate the shape of the paper's tables offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(&name.to_string(), sample_size, None, f);
        self
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

/// Units of work per iteration, for deriving rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. instructions) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark that borrows `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { samples: Vec::new(), budget: sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>10.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>10.3} MiB/s", n as f64 / median.as_secs_f64() / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} [{:>12?} {:>12?} {:>12?}]{rate}",
        b.samples[0],
        median,
        b.samples[b.samples.len() - 1],
    );
}

/// Bundles benchmark functions with a shared configuration under one name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
