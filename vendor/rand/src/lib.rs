//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny slice of `rand` it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`rngs::SmallRng`]. The
//! generator is a SplitMix64-seeded xoshiro256** — deterministic for a given
//! seed, which is all the workloads generator and tests require. It is NOT
//! the upstream `SmallRng` stream; nothing in this repository depends on the
//! exact upstream sequences, only on per-seed determinism.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types a [`Rng`] can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` given a raw `u64` source.
    fn sample_range(src: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(trivial_numeric_casts)]
            fn sample_range(src: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "empty sample range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is irrelevant at the span sizes used here.
                let off = (src() as u128 % span) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a [`Rng`] can sample from (half-open or inclusive).
pub trait SampleRange<T> {
    /// Samples one value.
    fn sample_one(self, src: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one(self, src: &mut dyn FnMut() -> u64) -> T {
        T::sample_range(src, self.start, self.end)
    }
}

impl<T: SampleUniform + num_step::One> SampleRange<T> for RangeInclusive<T> {
    fn sample_one(self, src: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(src, lo, num_step::one_past(hi))
    }
}

mod num_step {
    //! Internal helper turning an inclusive bound into an exclusive one.
    pub trait One: Copy {
        fn one_past(self) -> Self;
    }
    macro_rules! impl_one {
        ($($t:ty),*) => {$(
            impl One for $t {
                fn one_past(self) -> Self {
                    self.checked_add(1).expect("inclusive range at type max")
                }
            }
        )*};
    }
    impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    pub fn one_past<T: One>(v: T) -> T {
        v.one_past()
    }
}

/// Core random-value methods, in the spirit of `rand::Rng`.
pub trait Rng {
    /// Produces the next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut src = || self.next_u64();
        range.sample_one(&mut src)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as upstream does for u64 seeding.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-99..100);
            assert!((-99..100).contains(&v));
            let u: usize = rng.gen_range(0..10);
            assert!(u < 10);
            let w = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
        }
        // All values of a small range are eventually hit.
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
