//! The paper's §V-D validation methodology: run benchmarks "calling the
//! interfaces on a rotating basis; each dynamic instruction or basic block
//! used a different interface than the previous one", validating every
//! interface without a full run per interface.
//!
//! One simulator per standard buildset shares architectural state by
//! transplant: after each unit of execution (a block, an instruction, or a
//! seven-step sequence), state moves to the next interface.

use lis_core::{DynInst, Semantic, Step, STANDARD_BUILDSETS};
use lis_runtime::Simulator;
use lis_workloads::{spec_of, suite_of, ISAS};

/// Executes one unit (block / instruction / step sequence) on `sim`.
/// Returns `true` when the program has exited.
fn one_unit(sim: &mut Simulator, di: &mut DynInst, trace: &mut Vec<DynInst>) -> bool {
    match sim.buildset().semantic {
        Semantic::Block => {
            sim.next_block(trace).expect("block call");
            if let Some(f) = trace.last().and_then(|d| d.fault) {
                panic!("unexpected fault: {f}");
            }
        }
        Semantic::One => {
            sim.next_inst(di).expect("inst call");
            assert!(di.fault.is_none(), "unexpected fault: {:?}", di.fault);
        }
        Semantic::Step => {
            for step in Step::ALL {
                sim.step_inst(step, di).expect("step call");
                assert!(di.fault.is_none(), "unexpected fault: {:?}", di.fault);
            }
        }
    }
    sim.state.halted
}

#[test]
fn rotating_interface_validation() {
    for isa in ISAS {
        // Use the fastest-terminating kernels to keep the rotation dense.
        for kernel in ["sieve", "strrev", "hash31"] {
            let w = suite_of(isa).iter().find(|w| w.name == kernel).unwrap();
            let image = w.assemble().unwrap();
            let mut sims: Vec<Simulator> = STANDARD_BUILDSETS
                .iter()
                .map(|bs| {
                    let mut s = Simulator::new(spec_of(isa), *bs).unwrap();
                    s.load_program(&image).unwrap();
                    s
                })
                .collect();
            let mut di = DynInst::new();
            let mut trace = Vec::new();
            let mut cur = 0usize;
            let mut units = 0u64;
            loop {
                let halted = one_unit(&mut sims[cur], &mut di, &mut trace);
                units += 1;
                assert!(units < 10_000_000, "{isa}/{kernel}: runaway rotation");
                if halted {
                    let out = String::from_utf8_lossy(sims[cur].stdout()).into_owned();
                    assert_eq!(out, w.expected_stdout(), "{isa}/{kernel}");
                    assert_eq!(sims[cur].state.exit_code, 0);
                    break;
                }
                // Transplant architectural and OS state to the next
                // interface in the rotation.
                let next = (cur + 1) % sims.len();
                let (state, os) = (sims[cur].state.clone(), sims[cur].os.clone());
                sims[next].state = state;
                sims[next].os = os;
                cur = next;
            }
            // Every interface took part many times.
            assert!(units > 100, "{isa}/{kernel}: rotation too short ({units} units)");
        }
    }
}
