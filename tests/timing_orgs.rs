//! Cross-crate check: the five simulator organizations agree on every
//! kernel of every ISA (architecture results identical; timing reports
//! internally consistent).

use lis_timing::{
    run_functional_first, run_integrated, run_timing_directed, run_timing_first, CoreConfig,
};
use lis_workloads::{spec_of, suite_of, ISAS};

#[test]
fn organizations_agree_on_all_kernels() {
    let cfg = CoreConfig::default();
    for isa in ISAS {
        for w in suite_of(isa) {
            // Skip the slowest kernel in debug builds to keep CI fast.
            if w.name == "fib" {
                continue;
            }
            let image = w.assemble().unwrap();
            let spec = spec_of(isa);
            let expected = w.expected_stdout();
            let a = run_integrated(spec, &image, &cfg).unwrap();
            let b = run_functional_first(spec, &image, &cfg).unwrap();
            let c = run_timing_directed(spec, &image, &cfg).unwrap();
            let d = run_timing_first(spec, &image, &cfg, None).unwrap();
            for r in [&a, &b, &c, &d] {
                assert_eq!(
                    String::from_utf8_lossy(&r.stdout),
                    expected,
                    "{isa}/{}/{}",
                    w.name,
                    r.organization
                );
            }
            assert_eq!(a.insts, b.insts, "{isa}/{}", w.name);
            assert_eq!(a.insts, c.insts, "{isa}/{}", w.name);
            // Identical cycle model for integrated and trace-driven paths.
            assert_eq!(a.cycles, b.cycles, "{isa}/{}", w.name);
            assert_eq!(d.mismatches, 0, "{isa}/{}", w.name);
        }
    }
}
