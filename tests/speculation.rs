//! Speculation properties: rollback must restore *everything*, and a run
//! interrupted by arbitrary checkpoint/rollback/re-execute cycles must end
//! in the same state as an uninterrupted run.

use lis_core::{DynInst, BLOCK_ALL_SPEC, ONE_ALL, ONE_ALL_SPEC};
use lis_runtime::Simulator;
use lis_workloads::{gen::random_program, spec_of, suite_of};
use proptest::prelude::*;

fn assemble(isa: &str, src: &str) -> lis_mem::Image {
    match isa {
        "alpha" => lis_isa_alpha::assemble(src),
        "arm" => lis_isa_arm::assemble(src),
        _ => lis_isa_ppc::assemble(src),
    }
    .expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Execute-k, checkpoint, run-to-end, rollback: the state must be
    /// exactly as it was at the checkpoint — registers, memory effects,
    /// and OS state (stdout, ticks, break) included.
    #[test]
    fn rollback_restores_everything(
        seed in 0u64..10_000,
        len in 30usize..100,
        k in 1usize..25,
        isa_pick in 0usize..3,
    ) {
        let isa = ["alpha", "arm", "ppc"][isa_pick];
        let src = random_program(isa, seed, len);
        let image = assemble(isa, &src);
        let mut sim = Simulator::new(spec_of(isa), ONE_ALL_SPEC).unwrap();
        sim.load_program(&image).unwrap();
        let mut di = DynInst::new();
        for _ in 0..k {
            if sim.state.halted {
                break;
            }
            sim.next_inst(&mut di).unwrap();
            prop_assert!(di.fault.is_none());
        }
        let snap_state = sim.state.clone();
        let snap_out = sim.stdout().to_vec();
        let cp = sim.checkpoint().unwrap();
        if !sim.state.halted {
            sim.run_to_halt(1_000_000).unwrap();
        }
        sim.rollback(cp).unwrap();
        prop_assert!(sim.state.regs_eq(&snap_state),
            "{}", sim.state.first_diff(&snap_state).unwrap_or_default());
        prop_assert_eq!(sim.stdout(), &snap_out[..]);
        // Memory must match too: re-running from the restored state must
        // reproduce the reference run exactly.
        sim.run_to_halt(1_000_000).unwrap();
        let mut reference = Simulator::new(spec_of(isa), ONE_ALL).unwrap();
        reference.load_program(&image).unwrap();
        reference.run_to_halt(1_000_000).unwrap();
        prop_assert!(sim.state.regs_eq(&reference.state),
            "{}", sim.state.first_diff(&reference.state).unwrap_or_default());
        prop_assert_eq!(sim.stdout(), reference.stdout());
    }

    /// Nested checkpoints unwind independently and in order.
    #[test]
    fn nested_checkpoints(seed in 0u64..10_000, isa_pick in 0usize..3) {
        let isa = ["alpha", "arm", "ppc"][isa_pick];
        let src = random_program(isa, seed, 60);
        let image = assemble(isa, &src);
        let mut sim = Simulator::new(spec_of(isa), ONE_ALL_SPEC).unwrap();
        sim.load_program(&image).unwrap();
        let mut di = DynInst::new();
        let outer_state = sim.state.clone();
        let outer = sim.checkpoint().unwrap();
        for _ in 0..5 {
            if sim.state.halted { break; }
            sim.next_inst(&mut di).unwrap();
        }
        let inner_state = sim.state.clone();
        let inner = sim.checkpoint().unwrap();
        for _ in 0..5 {
            if sim.state.halted { break; }
            sim.next_inst(&mut di).unwrap();
        }
        sim.rollback(inner).unwrap();
        prop_assert!(sim.state.regs_eq(&inner_state));
        sim.rollback(outer).unwrap();
        prop_assert!(sim.state.regs_eq(&outer_state));
    }
}

/// Block-level speculation on a real kernel: checkpoint every block, commit
/// every block, and the result must match the plain run.
#[test]
fn block_checkpoint_commit_every_block() {
    for isa in ["alpha", "arm", "ppc"] {
        let w = suite_of(isa).iter().find(|w| w.name == "hash31").unwrap();
        let image = w.assemble().unwrap();
        let mut sim = Simulator::new(spec_of(isa), BLOCK_ALL_SPEC).unwrap();
        sim.load_program(&image).unwrap();
        let mut trace = Vec::new();
        while !sim.state.halted {
            let cp = sim.checkpoint().unwrap();
            sim.next_block(&mut trace).unwrap();
            assert!(trace.last().and_then(|d| d.fault).is_none());
            sim.commit(cp).unwrap();
        }
        assert_eq!(String::from_utf8_lossy(sim.stdout()), w.expected_stdout(), "{isa}");
    }
}

/// Rollback-and-retry every block: every block executes twice but the final
/// result is unchanged (the speculative functional-first recovery pattern).
#[test]
fn block_rollback_retry_every_block() {
    for isa in ["alpha", "arm", "ppc"] {
        let w = suite_of(isa).iter().find(|w| w.name == "strrev").unwrap();
        let image = w.assemble().unwrap();
        let mut sim = Simulator::new(spec_of(isa), BLOCK_ALL_SPEC).unwrap();
        sim.load_program(&image).unwrap();
        let mut trace = Vec::new();
        while !sim.state.halted {
            let cp = sim.checkpoint().unwrap();
            sim.next_block(&mut trace).unwrap();
            sim.rollback(cp).unwrap();
            // Retry: the second execution is the one that commits.
            let cp = sim.checkpoint().unwrap();
            sim.next_block(&mut trace).unwrap();
            assert!(trace.last().and_then(|d| d.fault).is_none());
            sim.commit(cp).unwrap();
        }
        assert_eq!(String::from_utf8_lossy(sim.stdout()), w.expected_stdout(), "{isa}");
        assert_eq!(sim.stats.rollbacks, sim.stats.checkpoints / 2);
    }
}
