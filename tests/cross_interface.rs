//! The toolkit's strongest invariant: for any program, every derived
//! interface produces bit-identical architectural results.
//!
//! Property-based: random programs are generated for each ISA and executed
//! under all twelve standard buildsets and both backends; final registers,
//! OS output, and instruction counts must agree exactly.

use lis_core::{ArchState, STANDARD_BUILDSETS};
use lis_runtime::{Backend, Simulator};
use lis_workloads::{gen::random_program, spec_of};
use proptest::prelude::*;

fn run(
    isa: &str,
    src: &str,
    bs: lis_core::BuildsetDef,
    backend: Backend,
) -> (ArchState, String, u64) {
    let image = match isa {
        "alpha" => lis_isa_alpha::assemble(src),
        "arm" => lis_isa_arm::assemble(src),
        _ => lis_isa_ppc::assemble(src),
    }
    .expect("generated programs assemble");
    let mut sim = Simulator::new(spec_of(isa), bs).unwrap();
    sim.set_backend(backend);
    sim.load_program(&image).unwrap();
    sim.run_to_halt(10_000_000).unwrap_or_else(|e| panic!("{isa}/{}: {e}\n{src}", bs.name));
    (sim.state.clone(), String::from_utf8_lossy(sim.stdout()).into_owned(), sim.stats.insts)
}

fn check_all_interfaces(isa: &str, seed: u64, len: usize) {
    let src = random_program(isa, seed, len);
    let reference = run(isa, &src, lis_core::ONE_ALL, Backend::Cached);
    for bs in STANDARD_BUILDSETS {
        for backend in [Backend::Cached, Backend::Interpreted] {
            let got = run(isa, &src, bs, backend);
            assert_eq!(got.1, reference.1, "{isa}/{}/{backend:?}: stdout differs", bs.name);
            assert_eq!(got.2, reference.2, "{isa}/{}/{backend:?}: inst count differs", bs.name);
            assert!(
                got.0.regs_eq(&reference.0),
                "{isa}/{}/{backend:?}: {}\n{src}",
                bs.name,
                got.0.first_diff(&reference.0).unwrap_or_default()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn alpha_interfaces_agree(seed in 0u64..10_000, len in 20usize..120) {
        check_all_interfaces("alpha", seed, len);
    }

    #[test]
    fn arm_interfaces_agree(seed in 0u64..10_000, len in 20usize..120) {
        check_all_interfaces("arm", seed, len);
    }

    #[test]
    fn ppc_interfaces_agree(seed in 0u64..10_000, len in 20usize..120) {
        check_all_interfaces("ppc", seed, len);
    }
}
