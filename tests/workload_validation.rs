//! The full validation matrix: every kernel × every ISA × every standard
//! interface must reproduce its golden model exactly (the paper's §V-D,
//! where "no additional errors were found during the interface validation
//! runs" is the pass criterion).

use lis_core::STANDARD_BUILDSETS;
use lis_runtime::Simulator;
use lis_workloads::{spec_of, suite_of, ISAS};

#[test]
fn every_kernel_on_every_interface() {
    let mut runs = 0usize;
    for isa in ISAS {
        for w in suite_of(isa) {
            let image = w.assemble().unwrap();
            let expected = w.expected_stdout();
            for bs in STANDARD_BUILDSETS {
                // The recursive kernel is the slowest; validate it on a
                // representative subset of interfaces to bound test time.
                if w.name == "fib" && !matches!(bs.name, "block-min" | "one-all" | "step-all") {
                    continue;
                }
                let mut sim = Simulator::new(spec_of(isa), bs).unwrap();
                sim.load_program(&image).unwrap();
                let summary = sim
                    .run_to_halt(100_000_000)
                    .unwrap_or_else(|e| panic!("{isa}/{}/{}: {e}", w.name, bs.name));
                assert_eq!(summary.exit_code, 0, "{isa}/{}/{}", w.name, bs.name);
                assert_eq!(
                    String::from_utf8_lossy(sim.stdout()),
                    expected,
                    "{isa}/{}/{}",
                    w.name,
                    bs.name
                );
                runs += 1;
            }
        }
    }
    // 3 ISAs x (7 kernels x 12 interfaces + fib x 3 interfaces)
    assert_eq!(runs, 3 * (7 * 12 + 3));
}
